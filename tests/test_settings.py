"""Tests for the consolidated RunSettings configuration object."""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine.settings import (
    ENV_CELL_RETRIES,
    ENV_CELL_TIMEOUT,
    ENV_GRID_STRICT,
    ENV_GRID_WORKERS,
    ENV_RESULT_CACHE,
    ENV_RETRY_BACKOFF,
    ENV_SERVE_WORKERS,
    ENV_SLOW_HIERARCHY,
    ENV_SLOW_SPCD,
    ENV_TRACE,
    RunSettings,
    available_cpus,
)
from repro.errors import ConfigurationError


def test_defaults_from_empty_environment():
    s = RunSettings.from_env({})
    assert s == RunSettings()
    assert s.workers == 1
    assert s.cache_dir is None and s.trace is None
    assert not s.slow_hierarchy and not s.slow_spcd
    assert s.cell_timeout_s is None
    assert s.cell_retries == 2
    assert s.retry_backoff_s == 0.25
    assert not s.strict


def test_from_env_round_trip():
    env = {
        ENV_GRID_WORKERS: "1",
        ENV_RESULT_CACHE: "/tmp/cache",
        ENV_TRACE: "/tmp/trace",
        ENV_SLOW_HIERARCHY: "yes",
        ENV_SLOW_SPCD: "on",
        ENV_CELL_TIMEOUT: "12.5",
        ENV_CELL_RETRIES: "4",
        ENV_RETRY_BACKOFF: "0.5",
        ENV_GRID_STRICT: "true",
    }
    s = RunSettings.from_env(env)
    assert s.workers == 1
    assert s.cache_dir == "/tmp/cache"
    assert s.trace == "/tmp/trace"
    assert s.slow_hierarchy and s.slow_spcd and s.strict
    assert s.cell_timeout_s == 12.5
    assert s.cell_retries == 4
    assert s.retry_backoff_s == 0.5
    # the dict view round-trips into an equal instance
    assert RunSettings(**s.as_dict()) == s


def test_from_env_reads_the_process_environment(monkeypatch):
    monkeypatch.setenv(ENV_CELL_RETRIES, "7")
    monkeypatch.setenv(ENV_GRID_STRICT, "1")
    s = RunSettings.from_env()
    assert s.cell_retries == 7 and s.strict


def test_env_workers_is_capped_at_available_cpus():
    s = RunSettings.from_env({ENV_GRID_WORKERS: "10000"})
    assert s.workers == min(10000, available_cpus())
    # an explicitly constructed instance is honored verbatim
    assert RunSettings(workers=10000).workers == 10000


def test_serve_workers_from_env():
    assert RunSettings.from_env({}).serve_workers == 1
    s = RunSettings.from_env({ENV_SERVE_WORKERS: "4"})
    # deliberately NOT capped at available_cpus: detection workers are
    # I/O-interleaved with the router, and the parity tests oversubscribe
    assert s.serve_workers == 4
    with pytest.raises(ConfigurationError, match="bad REPRO_SERVE_WORKERS"):
        RunSettings.from_env({ENV_SERVE_WORKERS: "two"})
    with pytest.raises(ConfigurationError):
        RunSettings(serve_workers=0)


@pytest.mark.parametrize(
    "env",
    [
        {ENV_GRID_WORKERS: "three"},
        {ENV_SLOW_SPCD: "maybe"},
        {ENV_SLOW_HIERARCHY: "2"},
        {ENV_CELL_TIMEOUT: "soon"},
        {ENV_CELL_RETRIES: "2.5"},
        {ENV_RETRY_BACKOFF: "fast"},
        {ENV_GRID_STRICT: "kinda"},
    ],
)
def test_garbage_env_values_raise(env):
    with pytest.raises(ConfigurationError, match="bad REPRO_"):
        RunSettings.from_env(env)


def test_bad_grid_workers_message_names_the_variable():
    with pytest.raises(ConfigurationError, match="bad REPRO_GRID_WORKERS value 'three'"):
        RunSettings.from_env({ENV_GRID_WORKERS: "three"})


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        RunSettings(workers=0)
    with pytest.raises(ConfigurationError):
        RunSettings(cell_timeout_s=0.0)
    with pytest.raises(ConfigurationError):
        RunSettings(cell_retries=-1)
    with pytest.raises(ConfigurationError):
        RunSettings(retry_backoff_s=-0.1)


def test_settings_are_frozen():
    s = RunSettings()
    with pytest.raises(dataclasses.FrozenInstanceError):
        s.workers = 4


def test_with_overrides_semantics():
    base = RunSettings(workers=2, cell_retries=1)
    # None keeps the existing value; values replace it
    assert base.with_overrides(workers=None) is base
    derived = base.with_overrides(workers=4, strict=True)
    assert derived.workers == 4 and derived.strict
    assert derived.cell_retries == 1  # untouched fields carry over
    assert base.workers == 2  # the original is untouched (frozen)
    with pytest.raises(ConfigurationError, match="unknown RunSettings"):
        base.with_overrides(warp_speed=9)
