"""Differential tests: fast-path hierarchy vs the reference engine.

The vectorised fast path of :class:`CoherentHierarchy` must be *bit
identical* to the per-access reference loop (``REPRO_SLOW_HIERARCHY=1``) —
same MESI transitions, same LRU decisions, same counters.  These tests pin
that equivalence at three levels: raw access streams against the hierarchy,
a full simulation under every mapping policy, and the numpy semantics the
fast path relies on.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cachesim.cache import LegacySetAssocCache, SetAssocCache
from repro.cachesim.hierarchy import CoherentHierarchy
from repro.cachesim.stats import CacheStats
from repro.engine.policies import Policy
from repro.engine.runner import run_single
from repro.engine.simulator import EngineConfig
from repro.machine.cache_params import CacheParams
from repro.machine.topology import build_machine
from repro.units import KIB
from repro.workloads.npb import make_npb


def small_machine():
    return build_machine(
        2, 2, 2,
        l1=CacheParams("L1", 1 * KIB, 2, 64, 2.0, 1),
        l2=CacheParams("L2", 2 * KIB, 2, 64, 6.0, 2),
        l3=CacheParams("L3", 4 * KIB, 4, 64, 15.0, 3),
    )


def assert_stats_equal(fast: CacheStats, slow: CacheStats) -> None:
    for f in dataclasses.fields(CacheStats):
        assert getattr(fast, f.name) == getattr(slow, f.name), (
            f"CacheStats.{f.name}: fast={getattr(fast, f.name)} "
            f"slow={getattr(slow, f.name)}"
        )


def test_random_streams_are_bit_identical():
    """Randomised batched access streams: counters, residency and dirt match."""
    rng = np.random.default_rng(1234)
    for trial in range(4):
        fast = CoherentHierarchy(small_machine(), fast_path=True)
        slow = CoherentHierarchy(small_machine(), fast_path=False)
        n_cores = len(fast.l1)
        for _ in range(10):
            core = int(rng.integers(n_cores))
            n = int(rng.integers(1, 300))
            # mix dense (hit-heavy) and sparse (miss-heavy) line ranges
            span = int(rng.choice([12, 40, 400]))
            lines = rng.integers(0, span, size=n).astype(np.int64)
            writes = rng.random(n) < 0.3
            homes = rng.integers(0, 2, size=n).astype(np.int64)
            fast.access_batch_pu(core, lines, writes, homes)
            slow.access_batch_pu(core, lines, writes, homes)
        assert_stats_equal(fast.stats, slow.stats)
        assert fast.check_invariants() == []
        for c_fast, c_slow in zip(
            list(fast.l1) + list(fast.l2) + list(fast.l3),
            list(slow.l1) + list(slow.l2) + list(slow.l3),
        ):
            assert set(c_fast.resident_lines()) == set(c_slow.resident_lines())
            assert (c_fast.hits, c_fast.misses, c_fast.evictions) == (
                c_slow.hits, c_slow.misses, c_slow.evictions,
            )
            for line in c_fast.resident_lines():
                assert c_fast.is_dirty(line) == c_slow.is_dirty(line)


@pytest.mark.parametrize("policy", list(Policy))
def test_full_simulation_parity_per_policy(policy, monkeypatch):
    """A small NPB run gives field-identical CacheStats fast vs slow."""
    cfg = EngineConfig(steps=25, batch_size=128)

    def factory():
        return make_npb("CG")

    monkeypatch.delenv("REPRO_SLOW_HIERARCHY", raising=False)
    fast = run_single(factory, policy, seed=99, config=cfg)
    monkeypatch.setenv("REPRO_SLOW_HIERARCHY", "1")
    slow = run_single(factory, policy, seed=99, config=cfg)

    assert_stats_equal(fast.stats, slow.stats)
    for metric in ("exec_time_s", "l2_mpki", "l3_mpki", "c2c_transactions"):
        assert fast.metric(metric) == slow.metric(metric)


def test_backing_swap_roundtrip_preserves_state():
    """Array<->OrderedDict L1 conversions keep LRU order, dirt and counters."""
    rng = np.random.default_rng(7)
    hier = CoherentHierarchy(small_machine(), fast_path=True)
    lines = rng.integers(0, 200, size=500).astype(np.int64)
    writes = rng.random(500) < 0.4
    homes = np.zeros(500, dtype=np.int64)
    hier.access_batch_pu(0, lines, writes, homes)

    l1 = hier.l1[0]
    if type(l1) is not SetAssocCache:  # adaptive bypass may have swapped already
        hier._l1_to_array(0)
        l1 = hier.l1[0]
    before = {
        line: l1.is_dirty(line) for line in l1.resident_lines()
    }
    counters = (l1.hits, l1.misses, l1.evictions)

    hier._l1_to_scalar(0)
    mid = hier.l1[0]
    assert type(mid) is LegacySetAssocCache
    assert {line: mid.is_dirty(line) for line in mid.resident_lines()} == before
    assert (mid.hits, mid.misses, mid.evictions) == counters

    hier._l1_to_array(0)
    after = hier.l1[0]
    assert type(after) is SetAssocCache
    assert {line: after.is_dirty(line) for line in after.resident_lines()} == before
    assert (after.hits, after.misses, after.evictions) == counters


def test_snapshot_matches_dataclass_field_order():
    """`CacheStats.snapshot` must track the dataclass field order exactly."""
    stats = CacheStats(**{
        f.name: i + 1 for i, f in enumerate(dataclasses.fields(CacheStats))
    })
    assert stats.snapshot() == tuple(
        getattr(stats, f.name) for f in dataclasses.fields(CacheStats)
    )


def test_numpy_fancy_assignment_is_last_wins():
    """`refresh_ways` relies on duplicate fancy indices resolving last-wins."""
    a = np.zeros(4, dtype=np.int64)
    a[np.array([1, 1, 2])] = np.array([10, 20, 30])
    assert a[1] == 20 and a[2] == 30

    cache = SetAssocCache(CacheParams("t", 1 * KIB, 2, 64))
    cache.insert(0)
    cache.insert(8)  # same set as 0 under 8 sets
    sets = np.array([0, 0], dtype=np.int64)
    resident, _, ways, _ = cache.probe_batch(np.array([0, 8], dtype=np.int64))
    assert resident.all()
    cache.refresh_ways(sets, ways)
    # after the refresh the age order is probe order: 0 older than 8
    cache.insert(16)  # evicts the LRU way of set 0
    assert not cache.contains(0) and cache.contains(8)
