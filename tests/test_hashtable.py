"""Tests for the SPCD sharing table and Linux hash function."""

import pytest

from repro.core.hashtable import (
    DEFAULT_TABLE_SIZE,
    GOLDEN_RATIO_64,
    ShareEntry,
    ShareTable,
    hash_64,
)
from repro.errors import ConfigurationError


class TestHash64:
    def test_full_width_default(self):
        assert hash_64(1) == GOLDEN_RATIO_64

    def test_bits_selects_top_bits(self):
        full = hash_64(12345)
        assert hash_64(12345, 16) == full >> 48

    def test_stays_in_range(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= hash_64(value, 20) < 2**20

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            hash_64(1, 0)
        with pytest.raises(ConfigurationError):
            hash_64(1, 65)

    def test_spreads_sequential_keys(self):
        """Golden-ratio hashing must scatter consecutive region ids."""
        slots = {hash_64(i, 16) for i in range(1000)}
        assert len(slots) > 990


class TestShareEntry:
    def test_not_shared_with_one_toucher(self):
        e = ShareEntry(region=1)
        e.touch(0, 100)
        assert not e.is_shared
        assert e.sharers == [0]

    def test_shared_with_two(self):
        e = ShareEntry(region=1)
        e.touch(0, 100)
        e.touch(1, 200)
        assert e.is_shared
        assert e.last_access == {0: 100, 1: 200}

    def test_touch_updates_timestamp(self):
        e = ShareEntry(region=1)
        e.touch(0, 100)
        e.touch(0, 300)
        assert e.last_access[0] == 300
        assert not e.is_shared


class TestShareTable:
    def test_lookup_absent(self):
        t = ShareTable(100)
        assert t.lookup(5) is None

    def test_get_or_create_then_lookup(self):
        t = ShareTable(100)
        e = t.get_or_create(5)
        e.touch(0, 1)
        assert t.lookup(5) is e

    def test_collision_overwrites(self):
        """Paper: on hash collision the previous entry is overwritten."""
        t = ShareTable(1)  # everything collides
        a = t.get_or_create(1)
        a.touch(0, 1)
        b = t.get_or_create(2)
        assert t.lookup(1) is None
        assert t.lookup(2) is b
        assert t.collisions == 1

    def test_same_region_not_a_collision(self):
        t = ShareTable(1)
        a = t.get_or_create(1)
        assert t.get_or_create(1) is a
        assert t.collisions == 0

    def test_shared_region_count(self):
        t = ShareTable(100)
        t.get_or_create(1).touch(0, 1)
        e = t.get_or_create(2)
        e.touch(0, 1)
        e.touch(1, 2)
        assert t.shared_region_count() == 1

    def test_occupancy(self):
        t = ShareTable(10)
        t.get_or_create(1)
        assert t.occupancy() == pytest.approx(0.1)

    def test_clear(self):
        t = ShareTable(10)
        t.get_or_create(1)
        t.clear()
        assert len(t) == 0

    def test_default_size_matches_paper(self):
        assert DEFAULT_TABLE_SIZE == 256_000

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            ShareTable(0)

    def test_low_collision_rate_at_paper_scale(self):
        """256k slots covering 1 GiB of 4 KiB pages: few collisions."""
        t = ShareTable(DEFAULT_TABLE_SIZE)
        for region in range(50_000):
            t.get_or_create(region)
        assert t.collisions / 50_000 < 0.12
