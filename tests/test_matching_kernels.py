"""Differential tests: array blossom engine vs the pure-Python reference.

The numpy engine (:func:`repro.core.matching._blossom_array`) must return
*bit-identical* ``mate`` arrays to the reference loops for every input we
feed it — same optimum, same tie-breaks, same vertex order.  These tests
pin that equivalence on 200 random integer matrices (including degenerate
all-ties inputs, where the tie-breaking order is the only thing deciding
the result), on sparse general graphs, and on the vectorised group-matrix
fold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grouping import build_hierarchy, group_matrix, pair_groups
from repro.core.matching import (
    _blossom_array,
    _blossom_reference,
    greedy_matching,
    matching_weight,
    max_weight_matching,
    max_weight_perfect_matching,
)
from repro.errors import MappingError


def _both_engines(edges, maxcardinality):
    ref = _blossom_reference(edges, maxcardinality)
    ei = np.fromiter((e[0] for e in edges), np.int64, count=len(edges))
    ej = np.fromiter((e[1] for e in edges), np.int64, count=len(edges))
    ew = np.fromiter((e[2] for e in edges), np.float64, count=len(edges))
    arr = _blossom_array(ei, ej, ew, maxcardinality)
    return ref, arr


def _random_symmetric_int(rng, n, hi):
    m = rng.integers(0, hi, size=(n, n)).astype(float)
    m = np.triu(m, 1)
    return m + m.T


def _complete_edges(m):
    n = m.shape[0]
    return [(i, j, float(m[i, j])) for i in range(n) for j in range(i + 1, n)]


def test_engines_bit_identical_on_200_random_integer_matrices():
    """200 random integer matrices, low ranges forcing degenerate ties."""
    rng = np.random.default_rng(20130520)  # paper's conference date
    for trial in range(200):
        n = int(rng.integers(4, 36))
        # hi=1 gives the fully degenerate all-zeros matrix; hi=2 is almost
        # all ties — the result is then decided purely by scan order.
        hi = int(rng.choice([1, 2, 3, 8, 1000]))
        m = _random_symmetric_int(rng, n, hi)
        edges = _complete_edges(m)
        maxcard = bool(trial % 2)
        ref, arr = _both_engines(edges, maxcard)
        assert ref == arr, f"trial {trial}: n={n} hi={hi} maxcardinality={maxcard}"


def test_engines_bit_identical_on_all_ties_matrix():
    """Every weight equal: only tie-break order decides the pairing."""
    for n in (8, 16, 32, 64):
        m = np.full((n, n), 7.0)
        np.fill_diagonal(m, 0.0)
        ref, arr = _both_engines(_complete_edges(m), True)
        assert ref == arr
        assert all(x >= 0 for x in arr)  # perfect


def test_engines_bit_identical_on_sparse_graphs():
    """General (non-complete) graphs, both cardinality modes."""
    rng = np.random.default_rng(99)
    for trial in range(60):
        n = int(rng.integers(6, 40))
        max_edges = n * (n - 1) // 2
        nedges = min(int(rng.integers(n, 3 * n)), max_edges)
        es = set()
        while len(es) < nedges:
            i, j = sorted(rng.integers(0, n, 2).tolist())
            if i != j:
                es.add((i, j))
        edges = [(i, j, float(rng.integers(0, 5))) for (i, j) in sorted(es)]
        for mc in (False, True):
            ref, arr = _both_engines(edges, mc)
            assert ref == arr, f"trial {trial} maxcardinality={mc}"


def test_dispatch_matches_reference_across_threshold():
    """The public function returns reference results on both sides of the
    size cutover."""
    rng = np.random.default_rng(5)
    for n in (8, 40, 48, 72):
        m = _random_symmetric_int(rng, n, 6)
        edges = _complete_edges(m)
        assert max_weight_matching(edges, True) == _blossom_reference(edges, True)


def test_perfect_matching_array_path_is_optimal():
    """Array fast path of the perfect matching: optimal weight, full cover."""
    rng = np.random.default_rng(17)
    n = 64
    m = _random_symmetric_int(rng, n, 50)
    pairs = max_weight_perfect_matching(m)
    assert len(pairs) == n // 2
    assert sorted(t for p in pairs for t in p) == list(range(n))
    # optimal ≥ greedy (greedy is a 1/2-approximation)
    assert matching_weight(m, pairs) >= matching_weight(m, greedy_matching(m))


def test_group_matrix_fold_matches_indicator_product():
    """Equal-size gather-fold equals the indicator matmul exactly on ints."""
    rng = np.random.default_rng(11)
    for n, size in ((16, 2), (32, 4), (64, 8)):
        comm = _random_symmetric_int(rng, n, 100)
        perm = rng.permutation(n)
        groups = [tuple(perm[i: i + size].tolist()) for i in range(0, n, size)]
        fast = group_matrix(comm, groups)
        g = len(groups)
        indicator = np.zeros((g, n))
        for a, members in enumerate(groups):
            indicator[a, list(members)] = 1.0
        ref = indicator @ comm @ indicator.T
        np.fill_diagonal(ref, 0.0)
        assert np.array_equal(fast, ref)


def test_group_matrix_still_validates_members():
    comm = np.zeros((4, 4))
    with pytest.raises(MappingError):
        group_matrix(comm, [(0, 1), (2, 9)])
    with pytest.raises(MappingError):
        group_matrix(comm, [(0, 1), (1, 2)])


def test_build_hierarchy_unchanged_semantics():
    """Pairing rounds still produce the documented pairing-tree encoding."""
    rng = np.random.default_rng(2)
    n = 16
    comm = _random_symmetric_int(rng, n, 30)
    groups = build_hierarchy(comm, 4)
    assert len(groups) == 4 and all(len(g) == 4 for g in groups)
    assert sorted(t for g in groups for t in g) == list(range(n))
    # one round of pairing halves the group count
    assert len(pair_groups(comm, groups)) == 2
