"""Property-based tests (hypothesis) on core data structures and invariants."""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.cache import SetAssocCache
from repro.cachesim.hierarchy import CoherentHierarchy
from repro.core.commmatrix import CommunicationMatrix
from repro.core.grouping import group_matrix
from repro.core.hashtable import ShareTable, hash_64
from repro.core.matching import (
    greedy_matching,
    matching_weight,
    max_weight_perfect_matching,
)
from repro.machine.cache_params import CacheParams
from repro.machine.topology import build_machine
from repro.mem.pagetable import PageTable
from repro.units import KIB


# ---------------------------------------------------------------------------
# matching
# ---------------------------------------------------------------------------
def symmetric_matrix(n, values):
    m = np.zeros((n, n))
    iu = np.triu_indices(n, 1)
    m[iu] = values
    return m + m.T


@given(
    n=st.sampled_from([2, 4, 6, 8]),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_perfect_matching_dominates_greedy_and_covers(n, data):
    values = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=100),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    w = symmetric_matrix(n, values)
    pairs = max_weight_perfect_matching(w)
    # perfect cover
    assert sorted(v for p in pairs for v in p) == list(range(n))
    # optimality dominates greedy
    assert matching_weight(w, pairs) >= matching_weight(w, greedy_matching(w)) - 1e-9


@given(
    perm_seed=st.integers(0, 2**31),
    n=st.sampled_from([4, 6]),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_matching_weight_invariant_under_relabelling(perm_seed, n, data):
    """Optimal matching weight is invariant under vertex permutation."""
    values = data.draw(
        st.lists(
            st.integers(0, 50), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2
        )
    )
    w = symmetric_matrix(n, values)
    perm = np.random.default_rng(perm_seed).permutation(n)
    wp = w[np.ix_(perm, perm)]
    w1 = matching_weight(w, max_weight_perfect_matching(w))
    w2 = matching_weight(wp, max_weight_perfect_matching(wp))
    assert w1 == w2


# ---------------------------------------------------------------------------
# communication matrix
# ---------------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.floats(0, 100)),
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_comm_matrix_stays_symmetric_nonneg(ops):
    m = CommunicationMatrix(8)
    for i, j, amount in ops:
        m.add(i, j, amount)
    arr = m.matrix
    assert np.allclose(arr, arr.T)
    assert (arr >= 0).all()
    assert np.all(np.diag(arr) == 0)


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.floats(0.1, 10)),
        min_size=1,
        max_size=40,
    ),
    factor=st.floats(0.0, 1.0),
)
@settings(max_examples=40, deadline=None)
def test_decay_preserves_pattern_shape(ops, factor):
    m = CommunicationMatrix(6)
    for i, j, amount in ops:
        m.add(i, j, amount)
    before = m.matrix.copy()
    m.decay(factor)
    assert np.allclose(m.matrix, before * factor)


# ---------------------------------------------------------------------------
# grouping
# ---------------------------------------------------------------------------
@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_group_matrix_conserves_cross_communication(data):
    n = 8
    values = data.draw(
        st.lists(st.floats(0, 10), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2)
    )
    m = symmetric_matrix(n, values)
    groups = [(0, 1), (2, 3), (4, 5), (6, 7)]
    h = group_matrix(m, groups)
    # Total cross-group communication is preserved.
    intra = sum(m[a, b] + m[b, a] for a, b in groups)
    assert h.sum() == (m.sum() - intra) or abs(h.sum() - (m.sum() - intra)) < 1e-9


# ---------------------------------------------------------------------------
# hash table
# ---------------------------------------------------------------------------
@given(regions=st.lists(st.integers(0, 2**48), min_size=1, max_size=200))
@settings(max_examples=30, deadline=None)
def test_share_table_lookup_consistency(regions):
    """After any insertion sequence, a lookup returns an entry for the region
    itself or None — never an aliased entry of a different region."""
    t = ShareTable(64)
    for r in regions:
        t.get_or_create(r).touch(0, 1)
    for r in regions:
        e = t.lookup(r)
        assert e is None or e.region == r


@given(value=st.integers(0, 2**64 - 1), bits=st.integers(1, 64))
@settings(max_examples=100, deadline=None)
def test_hash64_range(value, bits):
    assert 0 <= hash_64(value, bits) < (1 << bits)


# ---------------------------------------------------------------------------
# page table
# ---------------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 31)), min_size=1, max_size=200
    )
)
@settings(max_examples=50, deadline=None)
def test_page_table_consistency_under_any_op_sequence(ops):
    table = PageTable(32)
    populated = set()
    next_frame = 0
    for op, vpn in ops:
        if op == 0 and vpn not in populated:
            table.map_page(vpn, next_frame, vpn % 2)
            populated.add(vpn)
            next_frame += 1
        elif op == 1 and vpn in populated:
            table.unmap_page(vpn)
            populated.discard(vpn)
        elif op == 2:
            table.clear_present(vpn)
        elif op == 3 and vpn in populated and table.is_present(vpn) is False:
            table.restore_present(vpn)
    assert table.consistency_ok()
    assert set(table.populated_vpns().tolist()) == populated


# ---------------------------------------------------------------------------
# caches
# ---------------------------------------------------------------------------
@given(lines=st.lists(st.integers(0, 500), min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_cache_capacity_never_exceeded(lines):
    cache = SetAssocCache(CacheParams("t", 1 * KIB, 2, 64))
    for line in lines:
        cache.insert(line)
    per_set = Counter(cache.set_index(line) for line in cache.resident_lines())
    assert all(count <= cache.ways for count in per_set.values())
    # most recently inserted line of each set is resident
    assert cache.contains(lines[-1])


@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 80), st.booleans(), st.integers(0, 1)),
        min_size=1,
        max_size=400,
    )
)
@settings(max_examples=25, deadline=None)
def test_hierarchy_invariants_hold_for_any_access_sequence(accesses):
    machine = build_machine(
        2, 2, 2,
        l1=CacheParams("L1", 1 * KIB, 2, 64, 2.0, 1),
        l2=CacheParams("L2", 2 * KIB, 2, 64, 6.0, 2),
        l3=CacheParams("L3", 4 * KIB, 4, 64, 15.0, 3),
    )
    hier = CoherentHierarchy(machine)
    for pu, line, is_write, home in accesses:
        hier.access(pu, line, is_write, home)
    assert hier.check_invariants() == []
    s = hier.stats
    # accounting sanity: every private miss is resolved exactly once
    assert s.l2_misses == s.l3_hits + s.l3_misses
    assert s.l1_misses == s.l2_hits + s.l2_misses
    resolved = s.c2c_inter + s.dram_reads_local + s.dram_reads_remote
    assert resolved <= s.l3_misses + s.c2c_intra + 1
