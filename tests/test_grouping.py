"""Tests for hierarchical group formation (Eq. 1)."""

import numpy as np
import pytest

from repro.core.grouping import build_hierarchy, group_matrix, pair_groups
from repro.errors import MappingError
from repro.workloads.patterns import chain_pattern, neighbor_pairs_pattern


class TestGroupMatrix:
    def test_eq1_for_pairs(self):
        """H[(x,y),(z,k)] = M[x,z] + M[x,k] + M[y,z] + M[y,k]."""
        m = np.arange(16, dtype=float).reshape(4, 4)
        m = (m + m.T) / 2
        np.fill_diagonal(m, 0)
        h = group_matrix(m, [(0, 1), (2, 3)])
        expected = m[0, 2] + m[0, 3] + m[1, 2] + m[1, 3]
        assert h[0, 1] == expected == h[1, 0]

    def test_diagonal_zeroed(self):
        m = neighbor_pairs_pattern(4, 10)
        h = group_matrix(m, [(0, 1), (2, 3)])
        assert h[0, 0] == 0 and h[1, 1] == 0

    def test_singleton_groups_identity(self):
        m = chain_pattern(4)
        h = group_matrix(m, [(0,), (1,), (2,), (3,)])
        assert np.allclose(h, m)

    def test_rejects_duplicate_membership(self):
        with pytest.raises(MappingError):
            group_matrix(np.zeros((4, 4)), [(0, 1), (1, 2)])

    def test_rejects_out_of_range(self):
        with pytest.raises(MappingError):
            group_matrix(np.zeros((4, 4)), [(0, 9)])


class TestPairGroups:
    def test_pairs_heavy_partners(self):
        m = neighbor_pairs_pattern(8, 10)
        merged = pair_groups(m, [(t,) for t in range(8)])
        assert sorted(tuple(sorted(g)) for g in merged) == [
            (0, 1), (2, 3), (4, 5), (6, 7),
        ]

    def test_member_order_preserves_tree(self):
        m = neighbor_pairs_pattern(4, 10)
        pairs = pair_groups(m, [(t,) for t in range(4)])
        quads = pair_groups(m, pairs)
        assert len(quads) == 1 and len(quads[0]) == 4
        # The first two members form one level-1 pair, the last two the other.
        first, second = set(quads[0][:2]), set(quads[0][2:])
        assert first in ({0, 1}, {2, 3}) and second in ({0, 1}, {2, 3})

    def test_rejects_odd_group_count(self):
        with pytest.raises(MappingError):
            pair_groups(np.zeros((3, 3)), [(0,), (1,), (2,)])


class TestBuildHierarchy:
    def test_grows_to_target(self):
        m = chain_pattern(16)
        groups = build_hierarchy(m, 4)
        assert len(groups) == 4 and all(len(g) == 4 for g in groups)

    def test_target_one_is_identity(self):
        m = chain_pattern(4)
        assert build_hierarchy(m, 1) == [(0,), (1,), (2,), (3,)]

    def test_chain_pairs_adjacent(self):
        m = chain_pattern(8)
        pairs = build_hierarchy(m, 2)
        for g in pairs:
            assert abs(g[0] - g[1]) == 1

    def test_custom_start(self):
        m = neighbor_pairs_pattern(8)
        start = [(0, 1), (2, 3), (4, 5), (6, 7)]
        groups = build_hierarchy(m, 4, start=start)
        assert len(groups) == 2

    def test_rejects_non_power_ratio(self):
        with pytest.raises(MappingError):
            build_hierarchy(chain_pattern(12), 3)

    def test_rejects_mixed_start_sizes(self):
        with pytest.raises(MappingError):
            build_hierarchy(chain_pattern(4), 4, start=[(0,), (1, 2), (3,)])

    def test_rejects_shrinking(self):
        with pytest.raises(MappingError):
            build_hierarchy(chain_pattern(4), 1, start=[(0, 1), (2, 3)])
