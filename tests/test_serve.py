"""The mapping service: protocol, sharded parity, evaluator, metrics."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.hashtable import ArrayShareTable
from repro.errors import ConfigurationError, ProtocolError
from repro.serve import (
    EvalCadence,
    EventBatch,
    MappingEvaluator,
    MetricsRegistry,
    MsgType,
    SessionConfig,
    ShardedShareTable,
    TenantSession,
    offline_reference,
    synthetic_fault_stream,
)
from repro.serve import protocol
from repro.units import MSEC, PAGE_SIZE

WINDOW = 250 * MSEC


# ---------------------------------------------------------------------------
# protocol framing
# ---------------------------------------------------------------------------
class TestProtocol:
    def _roundtrip(self, data: bytes) -> protocol.Frame:
        header = data[: protocol._HEADER.size]
        length, type_byte = protocol._HEADER.unpack(header)
        body = data[protocol._HEADER.size :]
        assert len(body) == length
        return protocol.parse_body(type_byte, body)

    def test_json_frame_roundtrip(self):
        frame = self._roundtrip(
            protocol.encode(MsgType.HELLO, {"tenant": "a", "n_threads": 4})
        )
        assert frame.type is MsgType.HELLO
        assert frame.payload == {"tenant": "a", "n_threads": 4}

    def test_events_frame_roundtrip(self):
        vaddrs = np.array([0, PAGE_SIZE, 7 * PAGE_SIZE + 123], dtype=np.int64)
        frame = self._roundtrip(protocol.encode_events(3, 42 * MSEC, vaddrs))
        assert frame.type is MsgType.EVENTS
        batch = frame.payload
        assert isinstance(batch, EventBatch)
        assert batch.tid == 3 and batch.now_ns == 42 * MSEC
        assert np.array_equal(batch.vaddrs, vaddrs)
        assert batch.n_events == 3

    def test_events_json_normalises_to_events(self):
        data = protocol.encode(
            MsgType.EVENTS_JSON, {"tid": 1, "now_ns": 5, "vaddrs": [4096, 8192]}
        )
        frame = self._roundtrip(data)
        assert frame.type is MsgType.EVENTS
        assert np.array_equal(frame.payload.vaddrs, [4096, 8192])

    def test_truncated_events_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_events(b"\x00\x01")

    def test_event_count_mismatch_rejected(self):
        body = protocol._EVENTS_HEADER.pack(0, 0, 5) + b"\x00" * 8  # claims 5, has 1
        with pytest.raises(ProtocolError):
            protocol.decode_events(body)

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.parse_body(200, b"{}")

    def test_non_object_json_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.parse_body(int(MsgType.HELLO), b"[1,2]")

    def test_oversized_frame_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            protocol.encode_events(
                0, 0, np.zeros(protocol.MAX_FRAME_BYTES // 8 + 16, dtype=np.int64)
            )

    def test_sync_socket_roundtrip(self):
        import socket

        a, b = socket.socketpair()
        try:
            protocol.send_frame(a, protocol.encode(MsgType.CREDIT, {"events": 9}))
            frame = protocol.recv_frame(b)
            assert frame is not None
            assert frame.type is MsgType.CREDIT and frame.payload["events"] == 9
            a.close()
            assert protocol.recv_frame(b) is None  # clean EOF
        finally:
            b.close()


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge_render(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "requests", tenant="a").inc(3)
        reg.gauge("depth", "queue depth").set(2.5)
        text = reg.render()
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{tenant="a"} 3' in text
        assert "depth 2.5" in text

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_histogram_buckets_and_quantile(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5):
            h.observe(v)
        assert h.count == 4
        assert h.quantile(0.5) == 0.1
        assert h.quantile(1.0) == 1.0
        text = reg.render()
        assert 'lat_bucket{le="0.01"} 1' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text

    def test_render_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b", tenant="2").inc()
            reg.counter("b", tenant="1").inc()
            reg.gauge("a").set(1)
            return reg.render()

        assert build() == build()

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", "help").inc(2)
        snap = reg.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["values"][0]["value"] == 2.0


# ---------------------------------------------------------------------------
# session config + sharded table
# ---------------------------------------------------------------------------
class TestSessionConfig:
    def test_effective_table_size_rounds_up(self):
        cfg = SessionConfig(n_threads=4, table_size=10, shards=4)
        assert cfg.effective_table_size == 12

    def test_effective_table_size_exact_multiple(self):
        cfg = SessionConfig(n_threads=4, table_size=16, shards=4)
        assert cfg.effective_table_size == 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(n_threads=1)
        with pytest.raises(ConfigurationError):
            SessionConfig(n_threads=4, shards=0)
        with pytest.raises(ConfigurationError):
            SessionConfig(n_threads=4, matrix_decay=0.0)

    def test_from_overrides_rejects_unknown_keys(self):
        defaults = SessionConfig(n_threads=4)
        with pytest.raises(ProtocolError):
            SessionConfig.from_overrides(defaults, {"not_a_knob": 1})

    def test_from_overrides_applies(self):
        defaults = SessionConfig(n_threads=4)
        cfg = SessionConfig.from_overrides(defaults, {"table_size": 100})
        assert cfg.table_size == 100 and cfg.n_threads == 4

    def test_memory_bytes_scales_with_table(self):
        small = SessionConfig(n_threads=4, table_size=1000)
        large = SessionConfig(n_threads=4, table_size=100000)
        assert large.memory_bytes() > small.memory_bytes()


class TestShardedShareTable:
    def test_size_must_divide(self):
        with pytest.raises(ConfigurationError):
            ShardedShareTable(10, 4, n_shards=4)

    def test_partner_events_match_unsharded(self, rng):
        """The shard partition emits the same partner multiset per batch."""
        size, n_threads = 64, 6
        sharded = ShardedShareTable(size, n_threads, n_shards=4)
        flat = ArrayShareTable(size, n_threads)
        for step in range(30):
            tid = int(rng.integers(0, n_threads))
            regions = rng.integers(0, 200, size=int(rng.integers(1, 40)))
            now = step * MSEC
            per_shard, w_sharded = sharded.touch_batch(regions, tid, now, WINDOW)
            flat_partners, w_flat = flat.touch_batch(regions, tid, now, WINDOW)
            merged = np.concatenate(
                [p for _, p in per_shard] or [np.empty(0, dtype=np.int64)]
            )
            assert sorted(merged.tolist()) == sorted(flat_partners.tolist())
            assert w_sharded == w_flat
        assert sharded.collisions == flat.collisions
        assert sharded.inserts == flat.inserts
        assert sharded.lookups == flat.lookups
        assert sharded.shared_region_count() == flat.shared_region_count()


# ---------------------------------------------------------------------------
# evaluator + cadence
# ---------------------------------------------------------------------------
class TestEvalCadence:
    def test_ticks_once_per_interval(self):
        cadence = EvalCadence(100)
        assert cadence.due(99) == 0
        assert cadence.due(100) == 1
        assert cadence.due(150) == 0
        assert cadence.due(450) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            EvalCadence(0)


class TestMappingEvaluator:
    def test_rejects_more_threads_than_pus(self, small_machine):
        with pytest.raises(ConfigurationError):
            MappingEvaluator(small_machine, SessionConfig(n_threads=64))

    def test_insufficient_evidence_before_quota(self, machine):
        from repro.core.commmatrix import CommunicationMatrix

        ev = MappingEvaluator(machine, SessionConfig(n_threads=4))
        verdict, update = ev.decide(
            CommunicationMatrix(4), comm_events=0, events_seen=0, now_ns=0
        )
        assert verdict == "insufficient-evidence" and update is None

    def test_force_bypasses_quota_and_cooldown(self, machine):
        from repro.core.commmatrix import CommunicationMatrix

        cfg = SessionConfig(n_threads=8)
        ev = MappingEvaluator(machine, cfg)
        matrix = CommunicationMatrix(8)
        for t in range(8):
            matrix.add(t, (t + 4) % 8, 1000.0)
        verdict, update = ev.decide(
            matrix, comm_events=8000, events_seen=8000, now_ns=0, force=True
        )
        assert verdict == "migrated"
        assert update is not None and update.mapping != list(range(8))

    def test_far_pair_pattern_migrates(self, machine):
        """The far-pair synthetic stream produces an accepted remap."""
        cfg = SessionConfig(n_threads=8, table_size=10_000, eval_every_events=4096)
        stream = list(synthetic_fault_stream(8, 10_000, seed=2))
        result = offline_reference(stream, cfg, machine)
        assert result.remaps >= 1
        migrated = [e for e in result.evaluations if e.verdict == "migrated"]
        assert migrated and migrated[0].mapping != list(range(8))


# ---------------------------------------------------------------------------
# sharded session vs offline reference: the bit-parity pin
# ---------------------------------------------------------------------------
class TestShardedParity:
    def _drive(self, cfg, stream, machine):
        session = TenantSession("t", cfg, machine)
        updates = []
        for tid, now_ns, vaddrs in stream:
            updates.extend(
                session.ingest(EventBatch(tid=tid, now_ns=now_ns, vaddrs=vaddrs))
            )
        final = session.evaluate(force=True)
        if final is not None:
            updates.append(final)
        return session, updates

    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_digest_and_mapping_parity(self, machine, shards):
        cfg = SessionConfig(
            n_threads=8, table_size=10_000, shards=shards, eval_every_events=4096
        )
        stream = list(synthetic_fault_stream(8, 10_000, seed=3))
        session, updates = self._drive(cfg, stream, machine)
        reference = offline_reference(
            stream, cfg, machine, flush_after=[len(stream) - 1]
        )
        assert session.final_digest() == reference.final_digest
        assert [int(p) for p in session.evaluator.current] == reference.final_mapping
        assert session.evaluator.remaps == reference.remaps
        assert session.comm_events == reference.comm_events
        assert updates and updates[-1].mapping == reference.final_mapping

    def test_shard_count_does_not_change_results(self, machine):
        stream = list(synthetic_fault_stream(8, 8_000, seed=6))
        digests = set()
        mappings = []
        for shards in (1, 3, 4):
            cfg = SessionConfig(
                n_threads=8, table_size=9_999, shards=shards, eval_every_events=4096
            )
            # effective_table_size differs per shard count, so pin it equal
            cfg = SessionConfig(
                n_threads=8,
                table_size=10_008,  # divisible by 1, 3 and 4
                shards=shards,
                eval_every_events=4096,
            )
            session, _ = self._drive(cfg, stream, machine)
            digests.add(session.final_digest())
            mappings.append([int(p) for p in session.evaluator.current])
        assert len(digests) == 1
        assert all(m == mappings[0] for m in mappings)

    def test_evaluation_trace_matches_replay(self, machine, tmp_path):
        from repro.obs.recorder import JsonlRecorder

        cfg = SessionConfig(n_threads=8, table_size=10_000, eval_every_events=4096)
        stream = list(synthetic_fault_stream(8, 8_000, seed=4))
        path = tmp_path / "serve.jsonl"
        recorder = JsonlRecorder(path)
        session = TenantSession("t", cfg, machine, recorder=recorder)
        for tid, now_ns, vaddrs in stream:
            session.ingest(EventBatch(tid=tid, now_ns=now_ns, vaddrs=vaddrs))
        recorder.close()
        reference = offline_reference(stream, cfg, machine)
        import json

        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(events) == len(reference.evaluations)
        for ev, ref in zip(events, reference.evaluations):
            assert ev["type"] == "serve_evaluation"
            assert ev["verdict"] == ref.verdict
            assert ev["matrix_digest"] == ref.matrix_digest

    def test_ingest_rejects_out_of_range_tid(self, machine):
        cfg = SessionConfig(n_threads=4)
        session = TenantSession("t", cfg, machine)
        with pytest.raises(ProtocolError):
            session.ingest(
                EventBatch(tid=4, now_ns=0, vaddrs=np.zeros(1, dtype=np.int64))
            )


class TestSyntheticStream:
    def test_deterministic_for_seed(self):
        a = [(t, n, v.tolist()) for t, n, v in synthetic_fault_stream(4, 1000, seed=5)]
        b = [(t, n, v.tolist()) for t, n, v in synthetic_fault_stream(4, 1000, seed=5)]
        assert a == b

    def test_exact_event_counts(self):
        totals = {}
        for tid, _, vaddrs in synthetic_fault_stream(6, 1000, batch_events=300):
            totals[tid] = totals.get(tid, 0) + len(vaddrs)
        assert totals == {t: 1000 for t in range(6)}

    def test_odd_thread_count_rejected(self):
        with pytest.raises(Exception):
            list(synthetic_fault_stream(3, 10))


# ---------------------------------------------------------------------------
# server end-to-end (asyncio.run inside sync tests)
# ---------------------------------------------------------------------------
class TestServerE2E:
    @staticmethod
    def _config(**overrides):
        from repro.serve import ServeConfig

        defaults = dict(
            host="127.0.0.1",
            port=0,
            metrics_port=None,
            max_sessions=4,
            max_table_mb=64.0,
            shards=4,
            eval_every_events=4096,
            credit_window=65536,
            drain_grace_s=5.0,
        )
        defaults.update(overrides)
        return ServeConfig(**defaults)

    def test_admission_refusals(self, machine):
        from repro.errors import AdmissionError
        from repro.serve import AsyncServeClient, MappingServer

        async def scenario():
            async with MappingServer(
                self._config(max_sessions=1, max_table_mb=0.01), machine=machine
            ) as server:
                port = server.port
                with pytest.raises(AdmissionError) as exc:
                    await AsyncServeClient.connect(
                        "127.0.0.1", port, tenant="t", n_threads=4
                    )
                assert exc.value.code == "too-large"
                small = {"table_size": 64}
                first = await AsyncServeClient.connect(
                    "127.0.0.1", port, tenant="a", n_threads=4, config=small
                )
                with pytest.raises(AdmissionError) as exc:
                    await AsyncServeClient.connect(
                        "127.0.0.1", port, tenant="b", n_threads=4, config=small
                    )
                assert exc.value.code == "at-capacity"
                with pytest.raises(AdmissionError) as exc:
                    await AsyncServeClient.connect(
                        "127.0.0.1", port, tenant="", n_threads=4, config=small
                    )
                # capacity is checked before hello validation; free the
                # slot to observe the bad-hello refusals
                await first.close()
                with pytest.raises(AdmissionError) as exc:
                    await AsyncServeClient.connect(
                        "127.0.0.1", port, tenant="", n_threads=4, config=small
                    )
                assert exc.value.code == "bad-hello"
                with pytest.raises(AdmissionError) as exc:
                    await AsyncServeClient.connect(
                        "127.0.0.1", port, tenant="c", n_threads=1, config=small
                    )
                assert exc.value.code == "bad-hello"
                with pytest.raises(AdmissionError) as exc:
                    await AsyncServeClient.connect(
                        "127.0.0.1",
                        port,
                        tenant="d",
                        n_threads=4,
                        config={"bogus_knob": 1},
                    )
                assert exc.value.code == "bad-hello"
                assert server.sessions_refused == 6

        asyncio.run(scenario())

    def test_multi_tenant_digest_parity(self, machine):
        """Concurrent tenants each end bit-identical to their offline replay."""
        from repro.serve import AsyncServeClient, MappingServer, SessionConfig

        n_threads, per_thread = 8, 6_000
        overrides = {"table_size": 10_000, "eval_every_events": 4096}

        async def tenant(port, name, seed):
            client = await AsyncServeClient.connect(
                "127.0.0.1", port, tenant=name, n_threads=n_threads, config=overrides
            )
            stream = list(
                synthetic_fault_stream(n_threads, per_thread, seed=seed)
            )
            for tid, now_ns, vaddrs in stream:
                await client.send_events(tid, now_ns, vaddrs)
            summary = await client.close()
            return stream, summary, client.mappings

        async def scenario():
            async with MappingServer(self._config(), machine=machine) as server:
                results = await asyncio.gather(
                    *(tenant(server.port, f"t{i}", seed=i) for i in range(3))
                )
                assert server.sessions_served == 3
            return results

        for stream, summary, mappings in asyncio.run(scenario()):
            cfg = SessionConfig.from_overrides(
                SessionConfig(n_threads=n_threads, shards=4, eval_every_events=4096),
                overrides,
            )
            ref = offline_reference(
                stream, cfg, machine, flush_after=[len(stream) - 1]
            )
            assert summary["events"] == n_threads * per_thread
            assert summary["matrix_digest"] == ref.final_digest
            assert summary["mapping"] == ref.final_mapping
            assert len(mappings) >= 1
            assert mappings[-1]["mapping"] == ref.final_mapping

    def test_small_credit_window_loses_nothing(self, machine):
        """Backpressure throttles the client; every event still lands."""
        from repro.serve import AsyncServeClient, MappingServer

        async def scenario():
            async with MappingServer(
                self._config(credit_window=512), machine=machine
            ) as server:
                client = await AsyncServeClient.connect(
                    "127.0.0.1",
                    server.port,
                    tenant="slow",
                    n_threads=4,
                    config={"table_size": 4096},
                )
                assert client.welcome["credits"] == 512
                sent = 0
                for tid, now_ns, vaddrs in synthetic_fault_stream(
                    4, 2_000, batch_events=256, seed=7
                ):
                    await client.send_events(tid, now_ns, vaddrs)
                    sent += len(vaddrs)
                summary = await client.close()
                assert summary["events"] == sent == 8_000
                assert server.events_total == 8_000

        asyncio.run(scenario())

    def test_flush_forces_evaluation(self, machine):
        from repro.serve import AsyncServeClient, MappingServer

        async def scenario():
            async with MappingServer(self._config(), machine=machine) as server:
                client = await AsyncServeClient.connect(
                    "127.0.0.1",
                    server.port,
                    tenant="f",
                    n_threads=8,
                    config={"table_size": 10_000, "eval_every_events": 1 << 30},
                )
                for tid, now_ns, vaddrs in synthetic_fault_stream(8, 4_000, seed=8):
                    await client.send_events(tid, now_ns, vaddrs)
                # cadence never fires (huge eval_every); flush must
                pushed = await client.flush()
                assert pushed is not None
                assert pushed["mapping"] != list(range(8))
                summary = await client.close()
                assert summary["evaluations"] >= 1
                assert summary["remaps"] >= 1

        asyncio.run(scenario())

    def test_metrics_frame_and_http(self, machine):
        from repro.serve import AsyncServeClient, MappingServer

        async def scenario():
            async with MappingServer(
                self._config(metrics_port=0), machine=machine
            ) as server:
                client = await AsyncServeClient.connect(
                    "127.0.0.1",
                    server.port,
                    tenant="m",
                    n_threads=4,
                    config={"table_size": 4096},
                )
                for tid, now_ns, vaddrs in synthetic_fault_stream(4, 1_000, seed=9):
                    await client.send_events(tid, now_ns, vaddrs)
                await client.flush()
                text = await client.metrics()
                assert "serve_events_total 4000" in text
                assert 'serve_sessions 1' in text
                # the plaintext HTTP endpoint serves the same exposition
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.metrics_port
                )
                writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert raw.startswith(b"HTTP/1.0 200 ")
                assert b"serve_events_total 4000" in raw
                await client.close()

        asyncio.run(scenario())

    def test_drain_with_open_session_flushes_trace(self, machine, tmp_path):
        import json

        from repro.obs.recorder import JsonlRecorder
        from repro.serve import AsyncServeClient, MappingServer

        path = tmp_path / "serve.jsonl"

        async def scenario():
            recorder = JsonlRecorder(path)
            server = MappingServer(
                self._config(drain_grace_s=0.5), machine=machine, recorder=recorder
            )
            await server.start()
            client = await AsyncServeClient.connect(
                "127.0.0.1",
                server.port,
                tenant="open",
                n_threads=8,
                config={"table_size": 10_000},
            )
            for tid, now_ns, vaddrs in synthetic_fault_stream(8, 3_000, seed=10):
                await client.send_events(tid, now_ns, vaddrs)
            # session left open: drain must end it with reason="drain"
            await server.drain("test-drain")
            await client.close()

        asyncio.run(scenario())
        events = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [e["type"] for e in events]
        assert kinds[0] == "serve_start"
        assert kinds[-1] == "serve_end"
        ends = [e for e in events if e["type"] == "serve_session_end"]
        assert len(ends) == 1 and ends[0]["reason"] == "drain"
        assert ends[0]["events"] == 24_000
        assert ends[0]["matrix_digest"]
        final = [e for e in events if e["type"] == "serve_end"][0]
        assert final["reason"] == "test-drain"
        assert final["events_total"] == 24_000

    def test_draining_server_refuses_new_sessions(self, machine):
        from repro.errors import AdmissionError
        from repro.serve import AsyncServeClient, MappingServer

        async def scenario():
            server = MappingServer(self._config(), machine=machine)
            await server.start()
            port = server.port
            drainer = asyncio.ensure_future(server.drain())
            await drainer
            with pytest.raises((AdmissionError, ConnectionError, OSError)):
                await AsyncServeClient.connect(
                    "127.0.0.1", port, tenant="late", n_threads=4
                )

        asyncio.run(scenario())

    def test_protocol_error_ends_session(self, machine):
        from repro.serve import MappingServer, ServeClient

        async def scenario():
            async with MappingServer(self._config(), machine=machine) as server:
                port = server.port

                def bad_client():
                    client = ServeClient(
                        "127.0.0.1",
                        port,
                        tenant="bad",
                        n_threads=4,
                        config={"table_size": 4096},
                    )
                    try:
                        # tid out of range for the session
                        client.send_events(99, 0, np.zeros(4, dtype=np.int64))
                        with pytest.raises(Exception):
                            client.flush()
                    finally:
                        client._sock.close()

                await asyncio.get_running_loop().run_in_executor(None, bad_client)
                # give the server a beat to finish the teardown
                for _ in range(50):
                    if not server._connections:
                        break
                    await asyncio.sleep(0.02)
                assert not server._connections

        asyncio.run(scenario())
