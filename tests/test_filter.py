"""Tests for the communication filter."""

import numpy as np
import pytest

from repro.core.commmatrix import CommunicationMatrix
from repro.core.filter import CommunicationFilter
from repro.errors import ConfigurationError


def matrix_with_pairs(n, pairs, weight=100.0):
    m = CommunicationMatrix(n)
    for i, j in pairs:
        m.add(i, j, weight)
    return m


class TestFirstTrigger:
    def test_empty_matrix_never_triggers(self):
        f = CommunicationFilter(4)
        assert not f.should_remap(CommunicationMatrix(4))
        assert f.triggers == 0

    def test_first_communication_triggers(self):
        f = CommunicationFilter(4)
        assert f.should_remap(matrix_with_pairs(4, [(0, 1)]))
        assert f.triggers == 1

    def test_partners_snapshotted_on_trigger(self):
        f = CommunicationFilter(4)
        f.should_remap(matrix_with_pairs(4, [(0, 1), (2, 3)]))
        assert f.partners.tolist() == [1, 0, 3, 2]


class TestThreshold:
    def test_stable_pattern_does_not_retrigger(self):
        f = CommunicationFilter(4)
        m = matrix_with_pairs(4, [(0, 1), (2, 3)])
        f.should_remap(m)
        assert not f.should_remap(m)

    def test_two_changed_partners_trigger(self):
        """Paper Sec. IV-A: threshold of 2 changed partners."""
        f = CommunicationFilter(4, margin=0.0, hysteresis=1.0)
        f.should_remap(matrix_with_pairs(4, [(0, 1), (2, 3)]))
        assert f.should_remap(matrix_with_pairs(4, [(0, 2), (1, 3)]))

    def test_one_changed_partner_below_threshold(self):
        f = CommunicationFilter(6, margin=0.0, hysteresis=1.0)
        f.should_remap(matrix_with_pairs(6, [(0, 1), (2, 3), (4, 5)]))
        # Only thread 4 and 5 keep each other; move 0's partner to 2 but keep
        # threads 1..5 intact -> changes for 0 only... 0->2 changes 0 and 2.
        m = matrix_with_pairs(6, [(0, 1), (2, 3), (4, 5)])
        m.add(4, 3, 1.0)  # tiny extra, partner of 4 unchanged
        assert not f.should_remap(m)

    def test_custom_threshold(self):
        f = CommunicationFilter(8, threshold=5, margin=0.0, hysteresis=1.0)
        f.should_remap(matrix_with_pairs(8, [(0, 1), (2, 3), (4, 5), (6, 7)]))
        # 4 threads change partner: below threshold 5.
        assert not f.should_remap(matrix_with_pairs(8, [(0, 2), (1, 3), (4, 5), (6, 7)]))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            CommunicationFilter(4, threshold=0)


class TestNoiseRobustness:
    def test_hysteresis_absorbs_near_ties(self):
        """A partner flip between near-equal neighbours must not count."""
        f = CommunicationFilter(4, hysteresis=1.25, margin=0.0)
        m = CommunicationMatrix(4)
        m.add(0, 1, 100)
        m.add(2, 3, 100)
        f.should_remap(m)
        m2 = CommunicationMatrix(4)
        m2.add(0, 2, 105)  # new partner only 5% better
        m2.add(0, 1, 100)
        m2.add(1, 3, 105)
        m2.add(2, 3, 100)
        assert f.changed_partner_count(m2) == 0

    def test_clear_change_beats_hysteresis(self):
        f = CommunicationFilter(4, hysteresis=1.25, margin=0.5)
        f.should_remap(matrix_with_pairs(4, [(0, 1), (2, 3)]))
        m2 = CommunicationMatrix(4)
        m2.add(0, 2, 1000)
        m2.add(0, 1, 10)
        m2.add(1, 3, 1000)
        m2.add(2, 3, 10)
        assert f.should_remap(m2)

    def test_margin_blocks_sparse_noise(self):
        """First partners of barely-communicating threads need real weight."""
        f = CommunicationFilter(6, margin=1.0)
        f.should_remap(matrix_with_pairs(6, [(0, 1)], weight=10))
        m = matrix_with_pairs(6, [(0, 1)], weight=10)
        m.add(4, 5, 1.0)  # tiny first-time partners, below noise floor
        assert f.changed_partner_count(m) == 0

    def test_rejects_bad_hysteresis(self):
        with pytest.raises(ConfigurationError):
            CommunicationFilter(4, hysteresis=0.5)

    def test_rejects_negative_margin(self):
        with pytest.raises(ConfigurationError):
            CommunicationFilter(4, margin=-1)


class TestComplexity:
    def test_evaluation_counts(self):
        f = CommunicationFilter(4)
        m = matrix_with_pairs(4, [(0, 1)])
        f.should_remap(m)
        f.should_remap(m)
        assert f.evaluations == 2


class TestRestore:
    def test_restore_rolls_snapshot_back(self):
        f = CommunicationFilter(4, margin=0.0, hysteresis=1.0)
        before = f.partners
        f.should_remap(matrix_with_pairs(4, [(0, 1), (2, 3)]))
        f.restore(before)
        # The same evidence triggers again after the rollback.
        assert f.should_remap(matrix_with_pairs(4, [(0, 1), (2, 3)]))

    def test_restore_copies_input(self):
        import numpy as np

        f = CommunicationFilter(4)
        arr = np.array([1, 0, 3, 2])
        f.restore(arr)
        arr[0] = 99
        assert f.partners[0] == 1
