"""Tests for the execution engine: time model, energy model, policies."""

import numpy as np
import pytest

from repro.cachesim.stats import CacheStats
from repro.engine.energy import EnergyModel
from repro.engine.metrics import TimeModel, TimeParams
from repro.engine.policies import Policy, make_scheduler
from repro.errors import ConfigurationError
from repro.kernelsim.scheduler import CfsLikeScheduler, PinnedScheduler
from repro.workloads.npb import make_npb


class TestTimeModel:
    @pytest.fixture
    def tm(self, machine):
        return TimeModel(machine)

    def test_compute_time_scales_with_instructions(self, tm):
        assert tm.compute_time_ns(2000) == 2 * tm.compute_time_ns(1000)

    def test_compute_time_uses_frequency(self, machine):
        tm = TimeModel(machine)
        expected = 1000 * tm.params.cpi_base / machine.frequency_ghz
        assert tm.compute_time_ns(1000) == pytest.approx(expected)

    def test_l1_hits_are_free(self, tm):
        s = CacheStats(l1_hits=1000)
        assert tm.stall_time_ns(s) == 0.0

    def test_stall_ordering_by_event_depth(self, tm):
        def stall(**kw):
            return tm.stall_time_ns(CacheStats(**kw))

        l2 = stall(l2_hits=1)
        l3 = stall(l3_hits=1)
        c2c_x = stall(c2c_inter=1)
        dram_r = stall(dram_reads_remote=1)
        assert l2 < l3 < c2c_x < dram_r

    def test_remote_dram_slower_than_local(self, tm):
        local = tm.stall_time_ns(CacheStats(dram_reads_local=1))
        remote = tm.stall_time_ns(CacheStats(dram_reads_remote=1))
        assert remote > local

    def test_c2c_intra_cheaper_than_inter(self, tm):
        intra = tm.stall_time_ns(CacheStats(l3_hits=1, c2c_intra=1))
        inter = tm.stall_time_ns(CacheStats(c2c_inter=1))
        assert intra < inter

    def test_exposure_scales_stalls(self, machine):
        full = TimeModel(machine, params=TimeParams(stall_exposure=1.0))
        half = TimeModel(machine, params=TimeParams(stall_exposure=0.5))
        s = CacheStats(dram_reads_local=10)
        assert half.stall_time_ns(s) == pytest.approx(0.5 * full.stall_time_ns(s))

    def test_batch_time_is_compute_plus_stall(self, tm):
        s = CacheStats(l2_hits=5)
        assert tm.batch_time_ns(100, s) == pytest.approx(
            tm.compute_time_ns(100) + tm.stall_time_ns(s)
        )


class TestEnergyModel:
    @pytest.fixture
    def em(self, machine):
        return EnergyModel(machine)

    def test_static_energy_proportional_to_time(self, em):
        e1 = em.compute(1e9, 0, CacheStats())
        e2 = em.compute(2e9, 0, CacheStats())
        assert e2.processor_static_j == pytest.approx(2 * e1.processor_static_j)

    def test_static_power_per_socket(self, em, machine):
        e = em.compute(1e9, 0, CacheStats())
        assert e.processor_static_j == pytest.approx(
            em.params.static_w_per_socket * machine.n_sockets
        )

    def test_dram_energy_tracks_accesses(self, em):
        base = em.compute(1e9, 0, CacheStats())
        busy = em.compute(1e9, 0, CacheStats(dram_reads_local=10_000))
        assert busy.dram_j > base.dram_j
        assert busy.dram_background_j == base.dram_background_j

    def test_writebacks_count_as_dram_traffic(self, em):
        e = em.compute(1e9, 0, CacheStats(dram_writebacks=1000))
        assert e.dram_dynamic_j > 0

    def test_scale_multiplies_dynamic_only(self, em):
        s = CacheStats(dram_reads_local=100, l2_hits=100)
        e1 = em.compute(1e9, 1000, s, scale=1.0)
        e2 = em.compute(1e9, 1000, s, scale=2.0)
        assert e2.dram_dynamic_j == pytest.approx(2 * e1.dram_dynamic_j)
        assert e2.processor_static_j == e1.processor_static_j

    def test_remote_traffic_costs_more_processor_energy(self, em):
        near = em.compute(1e9, 0, CacheStats(l3_hits=1000, c2c_intra=1000))
        far = em.compute(1e9, 0, CacheStats(l3_misses=1000, c2c_inter=1000))
        assert far.processor_dynamic_j > near.processor_dynamic_j

    def test_epi_metrics(self, em):
        e = em.compute(1e9, 1000, CacheStats())
        assert e.proc_epi_nj(1e6) == pytest.approx(1e9 * e.processor_j / 1e6)
        assert e.dram_epi_nj(0) == 0.0


class TestPolicies:
    def test_parse_accepts_strings(self):
        assert Policy.parse("SPCD") is Policy.SPCD
        assert Policy.parse(Policy.OS) is Policy.OS

    def test_parse_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            Policy.parse("best-effort")

    def test_os_policy_builds_cfs(self, machine, rng):
        sched = make_scheduler(Policy.OS, machine, make_npb("BT"), rng)
        assert isinstance(sched, CfsLikeScheduler)
        assert len(sched.tasks) == 32

    def test_random_policy_is_pinned_permutation(self, machine, rng):
        sched = make_scheduler(Policy.RANDOM, machine, make_npb("BT"), rng)
        assert isinstance(sched, PinnedScheduler)
        assert sorted(sched.placement().tolist()) == sorted(
            set(sched.placement().tolist())
        )

    def test_oracle_policy_pairs_chain_neighbours(self, machine, rng):
        sched = make_scheduler(Policy.ORACLE, machine, make_npb("SP"), rng)
        placement = sched.placement()
        same_core = sum(
            machine.core_of(int(placement[i])) == machine.core_of(int(placement[i + 1]))
            for i in range(0, 31, 2)
        )
        assert same_core >= 12  # chain pairs mostly co-located

    def test_spcd_policy_is_pinnable(self, machine, rng):
        sched = make_scheduler(Policy.SPCD, machine, make_npb("BT"), rng)
        assert isinstance(sched, PinnedScheduler)

    def test_too_many_threads_rejected(self, small_machine, rng):
        from repro.workloads.npb import SyntheticNpbWorkload, NPB_SPECS

        wl = SyntheticNpbWorkload(NPB_SPECS["BT"], n_threads=9)
        with pytest.raises(ConfigurationError):
            make_scheduler(Policy.OS, small_machine, wl, rng)

    def test_random_differs_between_seeds(self, machine):
        a = make_scheduler(Policy.RANDOM, machine, make_npb("BT"), np.random.default_rng(1))
        b = make_scheduler(Policy.RANDOM, machine, make_npb("BT"), np.random.default_rng(2))
        assert a.placement().tolist() != b.placement().tolist()
