"""Tests for the TLB model and shootdowns."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.tlb import Tlb, TlbArray


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(4)
        assert tlb.lookup(1) is None
        tlb.insert(1, 100)
        assert tlb.lookup(1) == 100
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction(self):
        tlb = Tlb(2)
        tlb.insert(1, 10)
        tlb.insert(2, 20)
        tlb.lookup(1)  # refresh 1; 2 becomes LRU
        tlb.insert(3, 30)
        assert 2 not in tlb
        assert 1 in tlb and 3 in tlb

    def test_reinsert_updates_frame(self):
        tlb = Tlb(2)
        tlb.insert(1, 10)
        tlb.insert(1, 11)
        assert tlb.lookup(1) == 11
        assert len(tlb) == 1

    def test_invalidate(self):
        tlb = Tlb(4)
        tlb.insert(1, 10)
        assert tlb.invalidate(1)
        assert not tlb.invalidate(1)
        assert tlb.invalidations == 1

    def test_flush(self):
        tlb = Tlb(4)
        tlb.insert(1, 10)
        tlb.insert(2, 20)
        tlb.flush()
        assert len(tlb) == 0
        assert tlb.invalidations == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            Tlb(0)


class TestTlbArray:
    def test_shootdown_hits_every_pu(self):
        tlbs = TlbArray(4, capacity=8)
        for pu in range(4):
            tlbs[pu].insert(7, 70)
        removed = tlbs.shootdown([7])
        assert removed == 4
        assert all(7 not in tlbs[pu] for pu in range(4))
        assert tlbs.shootdowns == 1

    def test_shootdown_multiple_vpns(self):
        tlbs = TlbArray(2)
        tlbs[0].insert(1, 10)
        tlbs[1].insert(2, 20)
        assert tlbs.shootdown([1, 2, 3]) == 2

    def test_flush_pu_only_affects_target(self):
        tlbs = TlbArray(2)
        tlbs[0].insert(1, 10)
        tlbs[1].insert(1, 10)
        tlbs.flush_pu(0)
        assert 1 not in tlbs[0] and 1 in tlbs[1]

    def test_aggregate_counters(self):
        tlbs = TlbArray(2)
        tlbs[0].lookup(1)
        tlbs[0].insert(1, 10)
        tlbs[0].lookup(1)
        assert tlbs.total_hits() == 1 and tlbs.total_misses() == 1

    def test_rejects_zero_pus(self):
        with pytest.raises(ConfigurationError):
            TlbArray(0)
