"""Tests for address-space region management."""

import pytest

from repro.errors import AddressError
from repro.mem.addresspace import AddressSpace
from repro.units import PAGE_SIZE


class TestMmap:
    def test_regions_page_aligned_and_disjoint(self):
        space = AddressSpace(1024)
        a = space.mmap("a", 3 * PAGE_SIZE)
        b = space.mmap("b", PAGE_SIZE)
        assert a.base % PAGE_SIZE == 0
        assert b.base >= a.end

    def test_guard_gap_between_regions(self):
        space = AddressSpace(1024, guard_pages=1)
        a = space.mmap("a", PAGE_SIZE)
        b = space.mmap("b", PAGE_SIZE)
        assert b.first_vpn == a.first_vpn + a.n_pages + 1

    def test_page_zero_never_mapped(self):
        space = AddressSpace(1024)
        a = space.mmap("a", PAGE_SIZE)
        assert a.first_vpn >= 1

    def test_partial_page_rounds_up(self):
        space = AddressSpace(1024)
        a = space.mmap("a", PAGE_SIZE + 1)
        assert a.n_pages == 2

    def test_duplicate_name_rejected(self):
        space = AddressSpace(1024)
        space.mmap("a", PAGE_SIZE)
        with pytest.raises(AddressError):
            space.mmap("a", PAGE_SIZE)

    def test_zero_size_rejected(self):
        with pytest.raises(AddressError):
            AddressSpace(1024).mmap("a", 0)

    def test_capacity_exhaustion(self):
        space = AddressSpace(4)
        space.mmap("a", PAGE_SIZE)
        with pytest.raises(AddressError):
            space.mmap("b", 10 * PAGE_SIZE)


class TestLookup:
    def test_region_by_name(self):
        space = AddressSpace(1024)
        a = space.mmap("a", PAGE_SIZE)
        assert space.region("a") == a

    def test_missing_region_raises(self):
        with pytest.raises(AddressError):
            AddressSpace(64).region("nope")

    def test_region_of_address(self):
        space = AddressSpace(1024)
        a = space.mmap("a", 2 * PAGE_SIZE)
        assert space.region_of(a.base + 100) == a
        assert space.region_of(a.end) is None  # guard page

    def test_regions_sorted_by_base(self):
        space = AddressSpace(1024)
        space.mmap("z", PAGE_SIZE)
        space.mmap("a", PAGE_SIZE)
        regions = space.regions()
        assert regions[0].name == "z" and regions[1].name == "a"

    def test_total_mapped_bytes(self):
        space = AddressSpace(1024)
        space.mmap("a", 3 * PAGE_SIZE)
        space.mmap("b", PAGE_SIZE)
        assert space.total_mapped_bytes() == 4 * PAGE_SIZE


class TestRegion:
    def test_vpns_cover_region(self):
        space = AddressSpace(1024)
        a = space.mmap("a", 3 * PAGE_SIZE)
        assert a.vpns().tolist() == [a.first_vpn, a.first_vpn + 1, a.first_vpn + 2]

    def test_addr_bounds(self):
        space = AddressSpace(1024)
        a = space.mmap("a", PAGE_SIZE)
        assert a.addr(0) == a.base
        with pytest.raises(AddressError):
            a.addr(PAGE_SIZE)

    def test_contains(self):
        space = AddressSpace(1024)
        a = space.mmap("a", PAGE_SIZE)
        assert a.contains(a.base) and not a.contains(a.end)
