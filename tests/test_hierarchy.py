"""Tests for the MESI-coherent cache hierarchy."""

import pytest

from repro.cachesim.hierarchy import NO_OWNER, CoherentHierarchy
from repro.cachesim.line import iter_set_bits, lowest_set_bit, popcount
from repro.machine.topology import build_machine


@pytest.fixture
def hier(small_machine):
    """Hierarchy on a 2-socket x 2-core x 2-SMT machine (4 cores)."""
    return CoherentHierarchy(small_machine)


# PU layout on small_machine: cores 0,1 on socket 0; cores 2,3 on socket 1.
# PU i (i<4) is core i's first context; PU i+4 its SMT sibling.
PU_C0, PU_C1, PU_C2 = 0, 1, 2
SMT_OF_C0 = 4


class TestBitHelpers:
    def test_popcount(self):
        assert popcount(0b1011) == 3

    def test_lowest_set_bit(self):
        assert lowest_set_bit(0b1000) == 3
        assert lowest_set_bit(0) == -1

    def test_iter_set_bits(self):
        assert list(iter_set_bits(0b10101)) == [0, 2, 4]


class TestReadPath:
    def test_first_read_goes_to_dram(self, hier):
        hier.access(PU_C0, 100, False, 0)
        s = hier.stats
        assert s.dram_reads_local == 1
        assert s.l1_misses == s.l2_misses == s.l3_misses == 1

    def test_second_read_hits_l1(self, hier):
        hier.access(PU_C0, 100, False, 0)
        hier.access(PU_C0, 100, False, 0)
        assert hier.stats.l1_hits == 1

    def test_smt_sibling_hits_shared_l1(self, hier):
        """Case (a): SMT siblings share the core's private caches."""
        hier.access(PU_C0, 100, False, 0)
        hier.access(SMT_OF_C0, 100, False, 0)
        assert hier.stats.l1_hits == 1
        assert hier.stats.c2c_total == 0

    def test_same_socket_clean_read_hits_l3(self, hier):
        hier.access(PU_C0, 100, False, 0)
        hier.access(PU_C1, 100, False, 0)
        s = hier.stats
        assert s.l3_hits == 1
        assert s.c2c_total == 0  # clean data comes from the L3, not a cache

    def test_remote_dram_counted(self, hier):
        hier.access(PU_C0, 100, False, 1)  # home node 1, pu on socket 0
        assert hier.stats.dram_reads_remote == 1

    def test_cross_socket_clean_copy_is_c2c_inter(self, hier):
        hier.access(PU_C0, 100, False, 0)
        hier.access(PU_C2, 100, False, 0)  # socket 1 pulls from socket 0 L3
        assert hier.stats.c2c_inter == 1


class TestWritePath:
    def test_write_makes_owner(self, hier):
        hier.access(PU_C0, 100, True, 0)
        assert hier.dirty_owner(100) == 0

    def test_silent_upgrade(self, hier):
        hier.access(PU_C0, 100, False, 0)
        hier.access(PU_C0, 100, True, 0)
        assert hier.stats.silent_upgrades == 1
        assert hier.stats.invalidations == 0

    def test_write_invalidates_sharers(self, hier):
        hier.access(PU_C0, 100, False, 0)
        hier.access(PU_C1, 100, False, 0)
        hier.access(PU_C0, 100, True, 0)
        assert hier.stats.invalidations >= 1
        assert hier.sharer_mask(100) == 1  # only core 0

    def test_read_of_dirty_same_socket_is_c2c_intra(self, hier):
        hier.access(PU_C0, 100, True, 0)
        hier.access(PU_C1, 100, False, 0)
        s = hier.stats
        assert s.c2c_intra == 1 and s.c2c_inter == 0
        assert hier.dirty_owner(100) == NO_OWNER  # downgraded to shared

    def test_read_of_dirty_cross_socket_is_c2c_inter(self, hier):
        hier.access(PU_C0, 100, True, 0)
        hier.access(PU_C2, 100, False, 0)
        assert hier.stats.c2c_inter == 1

    def test_write_after_remote_write_moves_ownership(self, hier):
        hier.access(PU_C0, 100, True, 0)
        hier.access(PU_C2, 100, True, 0)
        assert hier.dirty_owner(100) == 2
        assert hier.sharer_mask(100) == 1 << 2

    def test_ping_pong_generates_c2c_per_round(self, hier):
        hier.access(PU_C0, 100, True, 0)
        for _ in range(5):
            hier.access(PU_C2, 100, True, 0)
            hier.access(PU_C0, 100, True, 0)
        assert hier.stats.c2c_inter == 10


class TestInvariants:
    def test_clean_after_simple_traffic(self, hier):
        for line in range(50):
            hier.access(PU_C0, line, line % 3 == 0, 0)
            hier.access(PU_C2, line, line % 5 == 0, 1)
        assert hier.check_invariants() == []

    def test_invariants_after_random_storm(self, small_machine, rng):
        hier = CoherentHierarchy(small_machine)
        n_pus = small_machine.n_pus
        for _ in range(6000):
            pu = int(rng.integers(0, n_pus))
            line = int(rng.integers(0, 600))
            hier.access(pu, line, bool(rng.integers(0, 2)), int(rng.integers(0, 2)))
        assert hier.check_invariants() == []

    def test_invariants_under_tiny_caches(self, rng):
        """Small caches force constant evictions and back-invalidations."""
        from repro.machine.cache_params import CacheParams
        from repro.units import KIB

        tiny = build_machine(
            2, 2, 2,
            l1=CacheParams("L1", 1 * KIB, 2, 64, 2.0, 1),
            l2=CacheParams("L2", 2 * KIB, 2, 64, 6.0, 2),
            l3=CacheParams("L3", 4 * KIB, 4, 64, 15.0, 3),
        )
        hier = CoherentHierarchy(tiny)
        for _ in range(4000):
            pu = int(rng.integers(0, tiny.n_pus))
            line = int(rng.integers(0, 300))
            hier.access(pu, line, bool(rng.integers(0, 2)), int(rng.integers(0, 2)))
        assert hier.check_invariants() == []
        assert hier.stats.back_invalidations > 0  # tiny L3 must back-invalidate


class TestBatch:
    def test_access_batch_equivalent_to_loop(self, small_machine):
        import numpy as np

        h1 = CoherentHierarchy(small_machine)
        h2 = CoherentHierarchy(small_machine)
        lines = np.array([1, 2, 1, 3, 2, 1])
        writes = np.array([False, True, False, True, False, True])
        homes = np.array([0, 0, 1, 1, 0, 0])
        for line, w, home in zip(lines, writes, homes):
            h1.access(2, int(line), bool(w), int(home))
        h2.access_batch_pu(2, lines, writes, homes)
        assert h1.stats.as_dict() == h2.stats.as_dict()

    def test_access_batch_multi_pu(self, small_machine):
        import numpy as np

        h = CoherentHierarchy(small_machine)
        h.access_batch(np.array([0, 2]), np.array([9, 9]), np.array([True, True]), np.array([0, 0]))
        assert h.stats.c2c_inter == 1
