"""Tests for the hierarchical thread mapper."""

import numpy as np
import pytest

from repro.core.commmatrix import CommunicationMatrix
from repro.core.mapping import DISTANCE_COST, HierarchicalMapper, mapping_comm_cost
from repro.errors import MappingError
from repro.machine.topology import CommDistance, build_machine
from repro.workloads.patterns import (
    chain_pattern,
    distant_pairs_pattern,
    neighbor_pairs_pattern,
    uniform_pattern,
)


class TestPairPlacement:
    def test_partners_land_on_smt_siblings(self, machine):
        mapper = HierarchicalMapper(machine)
        mapping = mapper.map(neighbor_pairs_pattern(32, 100))
        for k in range(16):
            d = machine.distance(int(mapping[2 * k]), int(mapping[2 * k + 1]))
            assert d is CommDistance.SAME_CORE

    def test_distant_pairs_also_land_together(self, machine):
        mapper = HierarchicalMapper(machine)
        mapping = mapper.map(distant_pairs_pattern(32, 100))
        for i in range(16):
            d = machine.distance(int(mapping[i]), int(mapping[i + 16]))
            assert d is CommDistance.SAME_CORE

    def test_every_thread_gets_own_pu(self, machine):
        mapping = HierarchicalMapper(machine).map(chain_pattern(32))
        assert len(set(mapping.tolist())) == 32

    def test_chain_beats_random_placement(self, machine, rng):
        comm = chain_pattern(32)
        mapping = HierarchicalMapper(machine).map(comm)
        cost = mapping_comm_cost(comm, mapping, machine)
        random_costs = [
            mapping_comm_cost(comm, rng.permutation(32), machine) for _ in range(10)
        ]
        assert cost < min(random_costs)

    def test_quads_share_socket_for_block_pattern(self, machine):
        """Groups of 4 mutually-communicating threads end on one socket."""
        comm = np.zeros((32, 32))
        for base in range(0, 32, 4):
            comm[base : base + 4, base : base + 4] = 10
        np.fill_diagonal(comm, 0)
        mapping = HierarchicalMapper(machine).map(comm)
        for base in range(0, 32, 4):
            sockets = {machine.socket_of(int(mapping[base + k])) for k in range(4)}
            assert len(sockets) == 1


class TestPartialOccupancy:
    def test_fewer_threads_than_pus(self, machine):
        comm = neighbor_pairs_pattern(8, 10)
        mapping = HierarchicalMapper(machine).map(comm)
        assert len(mapping) == 8
        assert len(set(mapping.tolist())) == 8
        for k in range(4):
            assert machine.distance(int(mapping[2 * k]), int(mapping[2 * k + 1])) is CommDistance.SAME_CORE

    def test_communicating_threads_cluster_on_one_socket(self, machine):
        comm = uniform_pattern(8, 10)
        mapping = HierarchicalMapper(machine).map(comm)
        sockets = {machine.socket_of(int(p)) for p in mapping}
        assert len(sockets) == 1

    def test_odd_thread_count(self, machine):
        comm = chain_pattern(7)
        mapping = HierarchicalMapper(machine).map(comm)
        assert len(mapping) == 7 and len(set(mapping.tolist())) == 7

    def test_too_many_threads_rejected(self, machine):
        with pytest.raises(MappingError):
            HierarchicalMapper(machine).map(np.zeros((33, 33)))


class TestMachineShapes:
    def test_single_socket_no_smt(self, single_socket_machine):
        mapping = HierarchicalMapper(single_socket_machine).map(chain_pattern(4))
        assert sorted(mapping.tolist()) == [0, 1, 2, 3]

    def test_non_power_of_two_cores_uses_greedy_packing(self):
        machine = build_machine(2, 3, 2)  # 6 cores, 12 PUs
        comm = neighbor_pairs_pattern(12, 10)
        mapping = HierarchicalMapper(machine).map(comm)
        assert len(set(mapping.tolist())) == 12
        for k in range(6):
            d = machine.distance(int(mapping[2 * k]), int(mapping[2 * k + 1]))
            assert d is CommDistance.SAME_CORE

    def test_accepts_communication_matrix_object(self, machine):
        m = CommunicationMatrix(32, chain_pattern(32))
        mapping = HierarchicalMapper(machine).map(m)
        assert len(mapping) == 32


class TestAlignment:
    def test_noop_when_already_optimal(self, machine):
        mapper = HierarchicalMapper(machine)
        comm = neighbor_pairs_pattern(32, 100)
        first = mapper.map(comm)
        second = mapper.map(comm, current=first)
        assert np.array_equal(first, second)

    def test_alignment_reduces_moves_under_relabelling(self, machine, rng):
        """Tie-breaking toward the current placement must cut migrations.

        The pair structure is fixed by the heavy weights; the higher
        grouping levels are all ties, so an unaligned mapper relabels
        sockets/cores arbitrarily while the aligned one mostly keeps them.
        """
        mapper = HierarchicalMapper(machine, stickiness=0.0)
        comm = neighbor_pairs_pattern(32, 100)
        current = mapper.map(comm)
        noisy = comm + rng.random((32, 32)) * 0.01
        noisy = (noisy + noisy.T) / 2
        np.fill_diagonal(noisy, 0)
        aligned = mapper.map(noisy, current=current)
        unaligned = mapper.map(noisy)
        moves_aligned = int((aligned != current).sum())
        moves_unaligned = int((unaligned != current).sum())
        assert moves_aligned < moves_unaligned
        assert moves_aligned <= 16
        # Pairs stay intact either way.
        for k in range(16):
            d = machine.distance(int(aligned[2 * k]), int(aligned[2 * k + 1]))
            assert d is CommDistance.SAME_CORE

    def test_stickiness_holds_uniform_patterns(self, machine, rng):
        """In homogeneous patterns any pairing is equal: keep the current."""
        mapper = HierarchicalMapper(machine, stickiness=1.0)
        uniform = uniform_pattern(32, 10)
        current = mapper.map(uniform)
        noisy = uniform + rng.random((32, 32))
        noisy = (noisy + noisy.T) / 2
        np.fill_diagonal(noisy, 0)
        remapped = mapper.map(noisy, current=current)
        assert int((remapped != current).sum()) == 0


class TestGreedyMode:
    def test_greedy_mapping_valid(self, machine):
        mapper = HierarchicalMapper(machine, use_greedy_matching=True)
        mapping = mapper.map(chain_pattern(32))
        assert len(set(mapping.tolist())) == 32

    def test_greedy_not_better_than_exact(self, machine):
        comm = chain_pattern(32) + uniform_pattern(32, 0.05)
        exact = HierarchicalMapper(machine).map(comm)
        greedy = HierarchicalMapper(machine, use_greedy_matching=True).map(comm)
        assert mapping_comm_cost(comm, exact, machine) <= mapping_comm_cost(
            comm, greedy, machine
        ) + 1e-9


class TestCommCost:
    def test_costs_ordered_by_distance(self):
        assert (
            DISTANCE_COST[CommDistance.SAME_CORE]
            < DISTANCE_COST[CommDistance.SAME_SOCKET]
            < DISTANCE_COST[CommDistance.CROSS_SOCKET]
        )

    def test_cost_zero_without_communication(self, machine):
        assert mapping_comm_cost(np.zeros((4, 4)), np.arange(4), machine) == 0

    def test_cost_counts_each_pair_once(self, machine):
        comm = np.zeros((2, 2))
        comm[0, 1] = comm[1, 0] = 4.0
        cost = mapping_comm_cost(comm, np.array([0, 8]), machine)  # cross socket
        assert cost == 4.0 * DISTANCE_COST[CommDistance.CROSS_SOCKET]
