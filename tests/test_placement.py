"""The placement-engine suite: typed policies, digest parity with the
pre-placement engine, NUMA walk cost, page-table replication, and the
co-decided data mapping.

The parity tests are the load-bearing part: ``"spcd"`` (string, typed
instance, or deprecated enum member) and an *inactive* replicated page
table must reproduce the legacy engine's results bit for bit, and the
walk-cost charging must stay off unless asked for.
"""

import dataclasses
import hashlib
import warnings

import numpy as np
import pytest

from repro import EngineConfig, RunSettings, Simulator, SpcdConfig, make_npb
from repro.core.datamap import SpcdDataMapper
from repro.engine.policies import Policy, make_scheduler
from repro.errors import AddressError, ConfigurationError
from repro.machine.topology import dual_xeon_e5_2650
from repro.mem.address import N_LEVELS
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.pagetable import PageTable
from repro.mem.physmem import FrameAllocator
from repro.mem.ptreplica import ReplicatedPageTable
from repro.mem.tlb import TlbArray
from repro.placement import (
    CombinedPlacementPolicy,
    DataPlacementPolicy,
    PlacementDecision,
    PlacementPolicy,
    ReplicatedPlacementPolicy,
    ThreadPlacementPolicy,
    canonical_policies,
    resolve_policy,
)
from repro.units import MSEC, PAGE_SIZE

CFG = EngineConfig(batch_size=128, steps=40, pretouch="parallel")


def digest(result) -> str:
    """Content hash of everything deterministic a run produces."""
    stats = dataclasses.astuple(result.stats)
    metrics = tuple(
        result.metric(m)
        for m in (
            "exec_time_s",
            "instructions",
            "l2_mpki",
            "l3_mpki",
            "c2c_transactions",
            "migrations",
            "first_touch_faults",
            "injected_faults",
        )
    )
    return hashlib.sha256(repr((stats, metrics)).encode()).hexdigest()[:16]


def run(policy, *, seed=7, workload="SP", settings=None, spcd_config=None):
    sim = Simulator(
        make_npb(workload), policy, seed=seed, config=CFG,
        settings=settings, spcd_config=spcd_config,
    )
    return sim, sim.run()


class TestResolvePolicy:
    def test_canonical_registry(self):
        registry = canonical_policies()
        assert set(registry) == {
            "os", "random", "oracle",
            "spcd", "spcd-hier", "spcd-data", "spcd-combined",
            "spcd-replicated",
        }
        for name, policy in registry.items():
            assert policy.name == name
            assert isinstance(policy, PlacementPolicy)

    def test_string_resolution_is_case_insensitive(self):
        assert resolve_policy("SPCD").name == "spcd"
        assert resolve_policy("spcd-Combined").name == "spcd-combined"

    def test_instances_pass_through_unchanged(self):
        policy = CombinedPlacementPolicy()
        assert resolve_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            resolve_policy("phoenix")

    def test_non_policy_object_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_policy(42)

    def test_enum_member_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="Policy enum member"):
            assert resolve_policy(Policy.SPCD).name == "spcd"

    def test_plain_strings_never_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in canonical_policies():
                resolve_policy(name)

    def test_legacy_make_scheduler_shim_still_builds(self, rng):
        machine = dual_xeon_e5_2650()
        scheduler = make_scheduler(Policy.OS, machine, make_npb("CG"), rng)
        assert scheduler.placement().shape == (make_npb("CG").n_threads,)


class _InertReplicaPolicy(ThreadPlacementPolicy):
    """replicate_pt-capable table installed, but never activated —
    the differential probe for inactive-replica bit-parity."""

    name = "spcd-inert-replica"
    replicate_pt = True

    def evaluate(self, view):
        return dataclasses.replace(
            ThreadPlacementPolicy.evaluate(self, view), replicate_pt=False
        )


class TestDigestParity:
    """`spcd` spelled any way — and with an idle replicated table —
    reproduces the legacy engine bit for bit."""

    def test_string_instance_and_enum_agree(self):
        _, by_string = run("spcd")
        _, by_instance = run(ThreadPlacementPolicy())
        with pytest.warns(DeprecationWarning):
            _, by_enum = run(Policy.SPCD)
        assert digest(by_string) == digest(by_instance) == digest(by_enum)

    def test_inactive_replicated_table_is_bit_identical(self):
        sim, plain = run("spcd")
        rsim, replicated = run(_InertReplicaPolicy())
        assert isinstance(rsim.address_space.page_table, ReplicatedPageTable)
        assert not rsim.address_space.page_table.active
        assert not isinstance(sim.address_space.page_table, ReplicatedPageTable)
        assert digest(plain) == digest(replicated)

    def test_walk_charging_is_off_by_default(self):
        sim, _ = run("spcd")
        assert sim.perf.pt_walk_levels_local == 0
        assert sim.perf.pt_walk_levels_remote == 0

    def test_walk_charging_slows_faults_when_enabled(self):
        _, base = run("spcd")
        sim, charged = run("spcd", settings=RunSettings(placement_walk=True))
        assert sim.perf.pt_walk_levels_local > 0
        # SP touches pages from both sockets, so some walks go remote
        assert sim.perf.pt_walk_levels_remote > 0
        assert charged.exec_time_s > base.exec_time_s


class TestWalkCost:
    def test_first_touch_assigns_directory_pages_to_the_walker(self):
        table = PageTable(1 << 12)
        cost = table.charge_walk(0, node=1)
        # the first walk allocates all four directory pages locally
        assert cost == N_LEVELS * table.level_local_ns
        assert [table.dir_home(lvl, 0) for lvl in range(N_LEVELS)] == [1] * N_LEVELS
        # a walk of the same page from the other socket pays full remote
        assert table.charge_walk(0, node=0) == N_LEVELS * table.level_remote_ns
        assert table.walk_levels_local == N_LEVELS
        assert table.walk_levels_remote == N_LEVELS

    def test_batch_walks_split_local_and_remote_levels(self):
        table = PageTable(1 << 12)
        table.charge_walk(np.arange(4, dtype=np.int64), node=0)
        before = table.walk_cost_ns
        cost = table.charge_walk(np.arange(4, dtype=np.int64), node=1)
        # shared upper directories are remote for node 1
        assert cost > 0 and table.walk_cost_ns == before + cost
        assert table.walk_levels_remote > 0

    def test_numa_model_derives_level_latencies(self):
        from repro.machine.numa import NumaModel

        numa = NumaModel(dual_xeon_e5_2650())
        local = numa.pt_walk_level_ns(local=True)
        remote = numa.pt_walk_level_ns(local=False)
        assert 0 < local < remote

    def test_replicated_table_walks_resolve_locally(self):
        table = ReplicatedPageTable(1 << 12, n_nodes=2)
        table.charge_walk(0, node=0)  # homes the directories on node 0
        table.activate()
        # post-activation, node 1 walks its own replica: all levels local
        assert table.charge_walk(0, node=1) == N_LEVELS * table.level_local_ns
        assert table.walk_levels_remote == 0


class TestReplicatedPageTable:
    def test_activation_cost_scales_with_directory_pages(self):
        table = ReplicatedPageTable(1 << 12, n_nodes=2, page_copy_cost_ns=100.0)
        cost = table.activate()
        assert cost == 2 * table.dir_page_count() * 100.0
        assert table.activate() == 0.0  # idempotent
        assert table.replication_cost_ns == cost

    def test_broadcast_keeps_replicas_coherent(self):
        table = ReplicatedPageTable(64, n_nodes=2)
        table.activate()
        table.map_page(3, 17, 1)
        table.clear_present(np.array([3], dtype=np.int64))
        table.unmap_page(3)
        assert table.replicas_coherent()
        assert table.replica_updates > 0
        assert table.replication_cost_ns > 0

    def test_dropped_present_broadcast_diverges(self):
        table = ReplicatedPageTable(64, n_nodes=2, broadcast_present=False)
        table.activate()
        table.map_page(3, 17, 1)
        divergence = table.replica_divergence()
        assert divergence is not None and "present" in divergence
        assert not table.consistency_ok()

    def test_rejects_nonpositive_node_count(self):
        with pytest.raises(ConfigurationError):
            ReplicatedPageTable(64, n_nodes=0)


class TestAddressSpaceTableInjection:
    def test_custom_table_is_used(self):
        table = ReplicatedPageTable(256, n_nodes=2)
        space = AddressSpace(256, page_table=table)
        assert space.page_table is table

    def test_capacity_mismatch_rejected(self):
        with pytest.raises(AddressError, match="capacity"):
            AddressSpace(256, page_table=PageTable(128))


@pytest.fixture
def datamap_env():
    space = AddressSpace(256)
    space.mmap("data", 16 * PAGE_SIZE)
    frames = FrameAllocator(2, 1000)
    tlbs = TlbArray(n_pus=2, capacity=8)
    pipeline = FaultPipeline(space, frames, tlbs, node_of_pu=lambda pu: pu % 2)
    mapper = SpcdDataMapper(pipeline, 2, node_of_pu=lambda pu: pu % 2, min_faults=2)
    return space, pipeline, mapper


def _fault(space, pipeline, pu, page):
    addr = space.region("data").base + page * PAGE_SIZE
    vpn = addr // PAGE_SIZE
    if space.page_table.is_present(vpn):
        space.page_table.clear_present(vpn)
    pipeline.handle_fault(pu, pu, addr, is_write=False, now_ns=0)
    return vpn


class TestHomeNodeRegression:
    """Satellite regression: home_node_of / home_nodes and the TLB
    shootdown a page migration must issue."""

    def test_home_tracks_mapping_and_unmapping(self):
        table = PageTable(64)
        assert table.home_node_of(5) == -1
        table.map_page(5, 9, 1)
        assert table.home_node_of(5) == 1
        table.unmap_page(5)
        assert table.home_node_of(5) == -1

    def test_home_nodes_is_the_vectorised_twin(self):
        table = PageTable(64)
        table.map_pages(
            np.array([1, 2, 3]), np.array([10, 11, 12]), np.array([0, 1, 0])
        )
        vpns = np.array([0, 1, 2, 3], dtype=np.int64)
        batch = table.home_nodes(vpns)
        assert batch.tolist() == [table.home_node_of(int(v)) for v in vpns]

    def test_migration_shoots_stale_tlb_entries(self, datamap_env):
        space, pipeline, mapper = datamap_env
        vpn = _fault(space, pipeline, 0, 0)  # PU 0 faults → TLB 0 caches it
        assert pipeline.tlbs[0].lookup(vpn) is not None
        for _ in range(5):
            _fault(space, pipeline, 1, 0)  # node 1 dominates → will migrate
        assert mapper.scan(0) == 1
        assert space.page_table.home_node_of(vpn) == 1
        # the regression: without the shootdown, TLB 0 kept translating
        # to the freed frame
        assert pipeline.tlbs[0].lookup(vpn) is None
        assert pipeline.tlbs[1].lookup(vpn) is None


class TestSharedPageDeferral:
    """decide/apply/finish split + the combined policy's deferral."""

    def _split_pattern(self, datamap_env):
        space, pipeline, mapper = datamap_env
        vpn = _fault(space, pipeline, 0, 0)
        for _ in range(3):
            _fault(space, pipeline, 0, 0)
        for _ in range(5):
            _fault(space, pipeline, 1, 0)  # 5:4 — no node dominates
        return space, mapper, vpn

    def test_data_only_vetoes_shared_pages(self, datamap_env):
        space, mapper, vpn = self._split_pattern(datamap_env)
        moves, deferred = mapper.decide(defer_shared=False)
        assert moves == [] and deferred == 0
        assert mapper.stats.migrations_vetoed_shared >= 1

    def test_combined_defers_shared_pages_to_the_thread_mapper(self, datamap_env):
        space, mapper, vpn = self._split_pattern(datamap_env)
        moves, deferred = mapper.decide(defer_shared=True)
        assert moves == [] and deferred == 1
        assert mapper.stats.migrations_vetoed_shared == 0

    def test_decide_apply_finish_equals_legacy_scan(self, datamap_env):
        space, pipeline, mapper = datamap_env
        vpn = _fault(space, pipeline, 0, 0)
        for _ in range(5):
            _fault(space, pipeline, 1, 0)
        moves, deferred = mapper.decide()
        assert moves == [(vpn, 1)] and deferred == 0
        assert mapper.apply_moves(moves) == 1
        mapper.finish_scan()
        assert space.page_table.home_node_of(vpn) == 1
        assert mapper.scan(1) == 0  # nothing left to do


class TestPlacementRuns:
    """End-to-end runs of every new policy on a small configuration."""

    def test_data_only_never_remaps_threads(self):
        sim, result = run("spcd-data")
        assert result.policy == "spcd-data"
        assert result.migrations == 0
        assert sim.manager.data_mapper is not None
        assert sim.address_space.page_table.consistency_ok()

    def test_combined_co_decides_in_one_evaluation(self):
        sim, result = run("spcd-combined", workload="SP")
        assert result.policy == "spcd-combined"
        assert sim.manager.overheads.filter_evaluations >= 1
        assert sim.manager.data_mapper is not None
        # the data scan rides the evaluation, not its own timer
        names = [kt.name for kt in sim.wheel.threads()]
        assert "spcd-datamap" not in names
        assert sim.address_space.page_table.consistency_ok()

    def test_replicated_policy_activates_and_stays_coherent(self):
        sim, result = run("spcd-replicated")
        table = sim.address_space.page_table
        assert isinstance(table, ReplicatedPageTable)
        assert table.active and table.replicas_coherent()
        assert sim.manager.replication_time_ns() > 0
        # the replication bill lands in the Fig. 16 mapping bucket
        assert sim.manager.mapping_time_ns() >= sim.manager.replication_time_ns()

    def test_pt_replicate_setting_activates_from_the_start(self):
        sim, _ = run("spcd", settings=RunSettings(pt_replicate=True))
        table = sim.address_space.page_table
        assert isinstance(table, ReplicatedPageTable)
        assert table.active and table.replicas_coherent()

    def test_policies_are_deterministic(self):
        for name in ("spcd-data", "spcd-combined", "spcd-replicated"):
            _, a = run(name, seed=11)
            _, b = run(name, seed=11)
            assert digest(a) == digest(b), name


class TestPlacementSettings:
    def test_env_knobs_route_through_runsettings(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLACEMENT_WALK", "1")
        monkeypatch.setenv("REPRO_PLACEMENT_WALK_LOCAL_NS", "11.5")
        monkeypatch.setenv("REPRO_PLACEMENT_WALK_REMOTE_NS", "99.0")
        monkeypatch.setenv("REPRO_PT_REPLICATE", "1")
        settings = RunSettings.from_env()
        assert settings.placement_walk is True
        assert settings.placement_walk_local_ns == 11.5
        assert settings.placement_walk_remote_ns == 99.0
        assert settings.pt_replicate is True

    def test_defaults_are_off(self):
        settings = RunSettings()
        assert settings.placement_walk is False
        assert settings.placement_walk_local_ns is None
        assert settings.placement_walk_remote_ns is None
        assert settings.pt_replicate is False

    def test_nonpositive_walk_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSettings(placement_walk_local_ns=0.0)
        with pytest.raises(ConfigurationError):
            RunSettings(placement_walk_remote_ns=-1.0)

    def test_walk_latency_overrides_reach_the_table(self):
        sim, _ = run(
            "spcd",
            settings=RunSettings(
                placement_walk=True,
                placement_walk_local_ns=11.5,
                placement_walk_remote_ns=99.0,
            ),
        )
        table = sim.address_space.page_table
        assert table.level_local_ns == 11.5
        assert table.level_remote_ns == 99.0


class TestPlacementDecision:
    def test_noop_detection(self):
        assert PlacementDecision(verdict="cooldown").is_noop
        assert not PlacementDecision(verdict="x", thread_mapping=(0, 1)).is_noop
        assert not PlacementDecision(verdict="x", replicate_pt=True).is_noop

    def test_decisions_are_frozen(self):
        decision = PlacementDecision(verdict="static")
        with pytest.raises(dataclasses.FrozenInstanceError):
            decision.verdict = "mutated"

    def test_policy_table_matches_registry(self):
        policies = canonical_policies()
        assert policies["spcd"].maps_threads and not policies["spcd"].maps_data
        assert not policies["spcd-data"].maps_threads
        assert policies["spcd-data"].maps_data
        combined = policies["spcd-combined"]
        assert combined.maps_threads and combined.maps_data
        assert not combined.replicate_pt
        replicated = policies["spcd-replicated"]
        assert replicated.maps_threads and replicated.maps_data
        assert replicated.replicate_pt
        assert isinstance(replicated, ReplicatedPlacementPolicy)
        assert isinstance(replicated, CombinedPlacementPolicy)
