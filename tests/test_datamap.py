"""Tests for SPCD-driven data mapping (NUMA page migration)."""

import numpy as np
import pytest

from repro.core.datamap import SpcdDataMapper
from repro.errors import ConfigurationError
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.units import PAGE_SIZE


@pytest.fixture
def env():
    space = AddressSpace(256)
    space.mmap("data", 16 * PAGE_SIZE)
    frames = FrameAllocator(2, 1000)
    pipeline = FaultPipeline(space, frames, node_of_pu=lambda pu: pu % 2)
    mapper = SpcdDataMapper(pipeline, 2, node_of_pu=lambda pu: pu % 2, min_faults=2)
    return space, pipeline, frames, mapper


def fault(space, pipeline, tid, pu, page, now=0):
    addr = space.region("data").base + page * PAGE_SIZE
    vpn = addr // PAGE_SIZE
    if space.page_table.is_present(vpn):
        space.page_table.clear_present(vpn)
    pipeline.handle_fault(tid, pu, addr, is_write=False, now_ns=now)
    return vpn


class TestAffinityTracking:
    def test_counts_faults_per_node(self, env):
        space, pipeline, frames, mapper = env
        vpn = fault(space, pipeline, 0, 0, 0)  # node 0
        fault(space, pipeline, 1, 1, 0)        # node 1
        fault(space, pipeline, 1, 1, 0)
        affinity = mapper.node_affinity(vpn)
        assert affinity.tolist() == [1.0, 2.0]

    def test_unknown_page_has_no_affinity(self, env):
        _, _, _, mapper = env
        assert mapper.node_affinity(999) is None

    def test_decay_on_scan(self, env):
        space, pipeline, frames, mapper = env
        vpn = fault(space, pipeline, 0, 0, 0)
        mapper.scan(0)
        assert mapper.node_affinity(vpn)[0] == pytest.approx(0.5)


class TestMigration:
    def test_remote_dominated_page_migrates(self, env):
        space, pipeline, frames, mapper = env
        vpn = fault(space, pipeline, 0, 0, 0)  # first touch on node 0
        assert space.page_table.home_node_of(vpn) == 0
        for _ in range(5):
            fault(space, pipeline, 1, 1, 0)  # node 1 dominates
        moved = mapper.scan(0)
        assert moved == 1
        assert space.page_table.home_node_of(vpn) == 1
        assert mapper.stats.pages_migrated == 1

    def test_truly_shared_page_left_alone(self, env):
        space, pipeline, frames, mapper = env
        vpn = fault(space, pipeline, 0, 0, 0)
        for _ in range(3):
            fault(space, pipeline, 0, 0, 0)
        for _ in range(5):
            fault(space, pipeline, 1, 1, 0)
        # node 1 leads 5:4 — not dominant enough (< 70%) to migrate
        assert mapper.scan(0) == 0
        assert space.page_table.home_node_of(vpn) == 0
        assert mapper.stats.migrations_vetoed_shared >= 1

    def test_local_dominated_page_not_touched(self, env):
        space, pipeline, frames, mapper = env
        vpn = fault(space, pipeline, 0, 0, 0)
        for _ in range(5):
            fault(space, pipeline, 0, 0, 0)
        assert mapper.scan(0) == 0
        assert space.page_table.home_node_of(vpn) == 0

    def test_few_faults_not_enough_evidence(self, env):
        space, pipeline, frames, mapper = env
        fault(space, pipeline, 1, 1, 0)
        assert mapper.scan(0) == 0

    def test_migration_preserves_present_bit_state(self, env):
        space, pipeline, frames, mapper = env
        vpn = fault(space, pipeline, 0, 0, 0)
        for _ in range(5):
            fault(space, pipeline, 1, 1, 0)
        # page ends present after last fault
        mapper.scan(0)
        assert space.page_table.is_present(vpn)
        assert space.page_table.consistency_ok()

    def test_old_frame_freed(self, env):
        space, pipeline, frames, mapper = env
        fault(space, pipeline, 0, 0, 0)
        allocated_before = sum(frames.allocated)
        for _ in range(5):
            fault(space, pipeline, 1, 1, 0)
        mapper.scan(0)
        assert sum(frames.allocated) == allocated_before

    def test_copy_time_charged(self, env):
        space, pipeline, frames, mapper = env
        fault(space, pipeline, 0, 0, 0)
        for _ in range(5):
            fault(space, pipeline, 1, 1, 0)
        mapper.scan(0)
        assert mapper.stats.copy_time_ns == mapper.copy_cost_ns

    def test_pages_only_rescanned_when_touched(self, env):
        space, pipeline, frames, mapper = env
        fault(space, pipeline, 0, 0, 0)
        for _ in range(5):
            fault(space, pipeline, 1, 1, 0)
        mapper.scan(0)
        # second scan without new faults does nothing
        assert mapper.scan(1) == 0


class TestConfig:
    def test_rejects_bad_dominance(self, env):
        space, pipeline, _, _ = env
        with pytest.raises(ConfigurationError):
            SpcdDataMapper(pipeline, 2, node_of_pu=lambda pu: 0, dominance=0.4)

    def test_detach(self, env):
        space, pipeline, frames, mapper = env
        mapper.detach()
        vpn = fault(space, pipeline, 0, 0, 0)
        assert mapper.node_affinity(vpn) is None


class TestManagerIntegration:
    def test_manager_registers_data_mapper(self, small_machine, rng):
        from repro.core.manager import SpcdConfig, SpcdManager
        from repro.kernelsim.kthread import TimerWheel
        from repro.kernelsim.scheduler import PinnedScheduler

        space = AddressSpace(256)
        space.mmap("d", 4 * PAGE_SIZE)
        pipeline = FaultPipeline(
            space, FrameAllocator(2, 100), node_of_pu=small_machine.numa_node_of
        )
        sched = PinnedScheduler(small_machine, 4, [0, 1, 2, 3])
        sched.start()
        wheel = TimerWheel()
        mgr = SpcdManager(
            small_machine, 4, pipeline, sched, rng,
            timer_wheel=wheel, config=SpcdConfig(data_mapping=True),
        )
        assert mgr.data_mapper is not None
        assert "spcd-datamap" in [kt.name for kt in wheel.threads()]

    def test_simulator_runs_with_data_mapping(self):
        from repro import EngineConfig, Simulator, SpcdConfig, make_npb

        from repro.units import MSEC

        cfg = EngineConfig(batch_size=128, steps=40, pretouch="parallel")
        sim = Simulator(
            make_npb("BT"), "spcd", seed=3, config=cfg,
            spcd_config=SpcdConfig(data_mapping=True, data_scan_period_ns=20 * MSEC),
        )
        sim.run()
        assert sim.manager.data_mapper.stats.scans >= 1
        assert sim.address_space.page_table.consistency_ok()


class TestDataPlusThreadMapping:
    """Data mapping and thread mapping composing in one SPCD run."""

    def _run(self, seed=5):
        from repro import EngineConfig, Simulator, SpcdConfig, make_npb
        from repro.units import MSEC

        cfg = EngineConfig(batch_size=128, steps=60, pretouch="parallel")
        sim = Simulator(
            make_npb("SP"), "spcd", seed=seed, config=cfg,
            spcd_config=SpcdConfig(
                data_mapping=True,
                data_scan_period_ns=20 * MSEC,
                filter_min_events=16.0,
            ),
        )
        result = sim.run()
        return sim, result

    def test_both_mechanisms_act_in_one_run(self):
        sim, result = self._run()
        mapper = sim.manager.data_mapper
        # the data mapper scanned and tracked per-node affinity...
        assert mapper.stats.scans >= 1
        # ...while the thread-mapping side evaluated the same fault stream
        assert sim.manager.overheads.filter_evaluations >= 1
        assert sim.manager.detector.stats.comm_events > 0
        # and the composition left the page table consistent
        assert sim.address_space.page_table.consistency_ok()

    def test_composition_is_deterministic(self):
        _, first = self._run(seed=9)
        _, second = self._run(seed=9)
        assert first.migrations == second.migrations
        assert first.os_migrations == second.os_migrations
        assert first.exec_time_s == second.exec_time_s
        assert first.detected_matrix is not None
        assert np.array_equal(
            first.detected_matrix.matrix, second.detected_matrix.matrix
        )

    def test_thread_mapping_unaffected_by_data_mapping_toggle(self):
        # data mapping moves pages between NUMA nodes; the communication
        # pattern the detector sees (thread/page sharing) is address-based,
        # so the detected matrix digest must not depend on the toggle
        from repro import EngineConfig, Simulator, SpcdConfig, make_npb
        from repro.core.manager import matrix_digest
        from repro.units import MSEC

        digests = []
        for data_mapping in (False, True):
            cfg = EngineConfig(batch_size=128, steps=40, pretouch="parallel")
            sim = Simulator(
                make_npb("CG"), "spcd", seed=4, config=cfg,
                spcd_config=SpcdConfig(
                    data_mapping=data_mapping, data_scan_period_ns=20 * MSEC
                ),
            )
            sim.run()
            digests.append(matrix_digest(sim.manager.detector.matrix))
        assert digests[0] == digests[1]
