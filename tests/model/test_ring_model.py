"""EventRing vs the deque model: push/pop/advance parity at every step.

The stateful machine drives the *real* shared-memory ring (producer and
an attached consumer peer, exactly the router/worker split) and the
trivially-correct :class:`repro.check.RingModel` through the same
operation sequence, comparing every return value and the occupancy after
every step.  Small capacities (including odd ones) make the ring wrap
every few records, so the wrap-marker, implicit-skip and full-ring paths
are all exercised constantly.

``test_wrap_skip_never_strands_the_consumer`` is the pinned satellite
audit of ``EventRing.pop()``'s wrap-skip path: a seeded deterministic
fuzz (no hypothesis) plus the hand-built worst-case offsets, asserting
the claimed invariant — after a skip there is *always* a published
record at offset 0, and ``pop()`` returns ``None`` exactly when the
model is empty.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.check import RingModel
from repro.errors import ProtocolError
from repro.serve import EventRing

#: small enough to wrap constantly; odd/non-power-of-two included on purpose
CAPACITIES = [24, 32, 64, 65, 100, 128]


class RingParity(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ring = None
        self.peer = None
        self.model = None

    @initialize(capacity=st.sampled_from(CAPACITIES))
    def setup(self, capacity):
        self.ring = EventRing.create(capacity)
        self.peer = EventRing.attach(self.ring.name)
        self.model = RingModel(capacity)
        assert self.ring.max_record_bytes() == self.model.record_cap

    @rule(data=st.data())
    def push(self, data):
        payload = data.draw(
            st.binary(min_size=0, max_size=self.model.record_cap), label="payload"
        )
        expected = self.model.try_push(payload)
        # model accepted/refused first; the real ring must agree
        assert self.ring.try_push(payload) == expected
        if not expected:
            # refused: the model tail must not have moved either way
            pass

    @rule(data=st.data())
    def push_vectored(self, data):
        """Multi-part push (payload + extra), as the router forwards frames."""
        cap = self.model.record_cap
        head_part = data.draw(st.binary(min_size=0, max_size=cap // 2), label="head")
        tail_part = data.draw(
            st.binary(min_size=0, max_size=cap - len(head_part)), label="tail"
        )
        expected = self.model.try_push(head_part + tail_part)
        assert self.ring.try_push(head_part, tail_part) == expected

    @rule()
    def push_oversize(self):
        oversize = b"z" * (self.model.record_cap + 1)
        with pytest.raises(ProtocolError):
            self.ring.try_push(oversize)
        with pytest.raises(ValueError):
            self.model.try_push(oversize)

    @rule()
    def pop_and_advance(self):
        expected = self.model.pop()
        view = self.peer.pop()
        if expected is None:
            assert view is None
        else:
            assert bytes(view) == expected
            del view
            self.peer.advance()
            self.model.advance()

    @invariant()
    def occupancy_matches(self):
        if self.model is None:
            return
        assert self.ring.occupancy == self.model.occupancy
        assert self.peer.occupancy == self.model.occupancy

    def teardown(self):
        if self.ring is not None:
            self.peer.close()
            self.ring.close()
            self.ring.unlink()


TestRingParity = RingParity.TestCase


def _drive(capacity: int, ops: int, seed: int) -> None:
    """Seeded push/pop parity run; asserts the full contract at every step."""
    rng = np.random.default_rng(seed)
    ring = EventRing.create(capacity)
    peer = EventRing.attach(ring.name)
    model = RingModel(capacity)
    try:
        for _ in range(ops):
            if rng.integers(2) == 0:
                payload = bytes(rng.integers(0, 256, size=int(rng.integers(0, model.record_cap + 1)), dtype=np.uint8))
                assert ring.try_push(payload) == model.try_push(payload)
            else:
                expected = model.pop()
                view = peer.pop()
                if expected is None:
                    # empty ring: pop must say so even when the head sits in
                    # a skip zone (< 4 bytes of room) or under a stale marker
                    assert view is None
                    assert model.occupancy == 0
                else:
                    assert bytes(view) == expected
                    del view
                    peer.advance()
                    model.advance()
            assert ring.occupancy == model.occupancy
    finally:
        peer.close()
        ring.close()
        ring.unlink()


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_wrap_skip_never_strands_the_consumer(capacity):
    """Satellite audit of the pop() wrap-skip path (serve/shm.py).

    The skip branch reads a length right after skipping the tail room,
    assuming a record is always published behind a wrap marker.  That
    holds because the producer publishes skip + record with one tail
    store and the consumer's skip rule is a pure function of the same
    counters — this fuzz pins it: across thousands of wrap crossings at
    every alignment, pop() never misreads a frame and never returns a
    record when the model says empty (the empty-after-skip interleaving
    is unreachable).
    """
    for seed in range(3):
        _drive(capacity, ops=4000, seed=seed)


def test_drain_to_empty_inside_the_skip_zone():
    """Head parked with < 4 bytes of tail room on an empty ring stays sane."""
    capacity = 64
    ring = EventRing.create(capacity)
    peer = EventRing.attach(ring.name)
    try:
        # footprints 20+20+21 park the drained head at offset 61: room 3
        for length in (16, 16, 17):
            assert ring.try_push(b"x" * length)
            view = peer.pop()
            assert len(view) == length
            del view
            peer.advance()
        assert peer.pop() is None  # empty, head in the implicit-skip zone
        assert ring.try_push(b"y" * 20)  # skips 3 bytes, record at offset 0
        view = peer.pop()
        assert bytes(view) == b"y" * 20
        del view
        peer.advance()
        assert peer.pop() is None
        assert ring.occupancy == 0
    finally:
        peer.close()
        ring.close()
        ring.unlink()


def test_stale_wrap_marker_is_overwritten_not_reread():
    """A marker left from an earlier lap must never masquerade as a prefix."""
    capacity = 64
    ring = EventRing.create(capacity)
    peer = EventRing.attach(ring.name)
    try:
        # lap 1: force an explicit wrap marker at offset 44
        for payload in (b"a" * 20, b"b" * 16):  # tail -> 24 -> 44
            assert ring.try_push(payload)
            view = peer.pop()
            assert bytes(view) == payload
            del view
            peer.advance()
        assert ring.try_push(b"c" * 20)  # room 20 < 24: marker at 44, rec at 0
        view = peer.pop()
        assert bytes(view) == b"c" * 20
        del view
        peer.advance()
        # lap 2: land a real record exactly at offset 44 (the marker bytes)
        assert ring.try_push(b"d" * 16)  # tail 88 -> pos 24, footprint 20
        view = peer.pop()
        del view
        peer.advance()
        assert ring.try_push(b"e" * 12)  # pos 44: overwrites the stale marker
        view = peer.pop()
        assert bytes(view) == b"e" * 12
        del view
        peer.advance()
        assert peer.pop() is None
    finally:
        peer.close()
        ring.close()
        ring.unlink()
