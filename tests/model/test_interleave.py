"""TLB-shootdown × fault-injection interleaving enumeration (mem/).

Runs every op sequence of the 2-thread small model against the real
``mem/`` stack and asserts the coherence invariant after every op (see
``repro/check/interleave.py``).  The fast tests fully enumerate the
2-page model; the ``slow``-marked test covers the issue's full 2-thread ×
4-page model at greater depth.

The negative control is the important part: with the injector's
shootdown half removed (``inject_noshoot``), the enumerator MUST find
the stale-translation counterexample — proving the checker can see the
hazard before we trust its silence on the real
``clear_present + shootdown`` sequence.
"""

from __future__ import annotations

import pytest

from repro.check import check_tlb_fault_interleavings, interleavings, op_sequences


def test_enumerators_cover_the_space():
    assert list(interleavings("ab", "c")) == [
        ("a", "b", "c"), ("a", "c", "b"), ("c", "a", "b"),
    ]
    assert len(list(interleavings("ab", "cd"))) == 6  # C(4, 2)
    assert len(list(op_sequences(["x", "y"], 3))) == 8


def test_injector_with_shootdown_has_no_stale_translations():
    """The real wake sequence survives full enumeration of the 2-page model."""
    found = check_tlb_fault_interleavings(
        n_threads=2, n_pages=2, max_len=4, tlb_capacity=2
    )
    assert found == []


def test_negative_control_missing_shootdown_is_caught():
    """Dropping the shootdown must produce a minimised counterexample."""
    found = check_tlb_fault_interleavings(
        n_threads=2, n_pages=2, max_len=3, tlb_capacity=2, with_noshoot=True
    )
    assert found, "the checker failed to detect the seeded stale-TLB bug"
    cx = found[0]
    # greedy minimisation must reduce it to the 2-op essence:
    # populate a translation, then clear the present bit without shooting
    assert len(cx.ops) == 2
    assert cx.ops[0][0] == "access"
    assert cx.ops[1][0] == "inject_noshoot"
    assert "stale translation" in cx.reason


@pytest.mark.slow
def test_full_two_thread_four_page_model():
    """The issue's 2-thread × 4-page model, deeper sequences, LRU pressure."""
    found = check_tlb_fault_interleavings(
        n_threads=2, n_pages=4, max_len=4, tlb_capacity=2
    )
    assert found == []
    # and the control still trips at the larger size
    found = check_tlb_fault_interleavings(
        n_threads=2, n_pages=4, max_len=3, tlb_capacity=2, with_noshoot=True
    )
    assert found and "stale translation" in found[0].reason
