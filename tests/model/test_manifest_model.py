"""GridManifest vs an in-memory dict, plus the byte-truncation enumerator.

The stateful machine interleaves records, reloads, simulated kills (torn
tails), duplicate headers from racing writers and stray mid-file header
lines — after every reload the real manifest must agree with a plain
dict.  The enumerator tests then prove the durability contract at *every*
byte offset, not just the line boundaries the stateful machine hits.

Pinned regressions (plain tests, no hypothesis) for the two bugs this
harness found:

* a mismatched mid-file header line used to reset ``header_ok`` and drop
  every record after it — and unlink the whole file;
* appending after a torn tail used to glue the new record onto the
  fragment, silently losing a durably-fsynced record on the next resume.
"""

from __future__ import annotations

import json

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.check import (
    manifest_prefix_model,
    truncation_sweep,
    with_duplicate_header,
    with_midfile_header,
)
from repro.engine.checkpoint import DONE, FAILED, MANIFEST_VERSION, CellRecord, GridManifest

GRID_KEY = "modelcheck-grid"
KEYS = [f"cell{i}" for i in range(6)]


def _rec(key: str, status: str, attempts: int, error: str = "") -> CellRecord:
    return CellRecord(
        key=key, workload="w", policy="p", rep=0,
        status=status, attempts=attempts, error=error,
    )


class ManifestParity(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        import tempfile
        from pathlib import Path

        self.dir = Path(tempfile.mkdtemp(prefix="manifest-model-"))
        self.path = self.dir / "manifest.jsonl"
        self.manifest = GridManifest(self.path, GRID_KEY)
        self.model: "dict[str, CellRecord]" = {}

    def _reopen(self):
        self.manifest.close()
        self.manifest = GridManifest(self.path, GRID_KEY)

    @rule(
        key=st.sampled_from(KEYS),
        status=st.sampled_from([DONE, FAILED]),
        attempts=st.integers(min_value=1, max_value=4),
    )
    def record(self, key, status, attempts):
        rec = _rec(key, status, attempts)
        self.manifest.record(rec)
        self.model[key] = rec

    @rule()
    def reload(self):
        self._reopen()

    @rule(garbage=st.binary(min_size=1, max_size=40))
    def killed_mid_write(self, garbage):
        """A kill tears the final line; the fragment must cost nothing."""
        self.manifest.close()
        fragment = garbage.replace(b"\n", b"")
        with open(self.path, "ab") as f:
            f.write(fragment)
        self.manifest = GridManifest(self.path, GRID_KEY)

    @rule()
    def racing_writer_duplicate_header(self):
        """A second writer's header line lands mid-file; records survive."""
        self.manifest.close()
        header = {"type": "manifest", "version": MANIFEST_VERSION, "grid_key": GRID_KEY}
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(header, separators=(",", ":")) + "\n")
        self.manifest = GridManifest(self.path, GRID_KEY)

    @rule()
    def stray_midfile_header(self):
        """A stale header naming another grid mid-file is inert garbage."""
        self.manifest.close()
        header = {"type": "manifest", "version": MANIFEST_VERSION, "grid_key": "other"}
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(header, separators=(",", ":")) + "\n")
        self.manifest = GridManifest(self.path, GRID_KEY)

    @invariant()
    def records_match_model(self):
        assert self.manifest.records == self.model

    def teardown(self):
        self.manifest.close()
        import shutil

        shutil.rmtree(self.dir, ignore_errors=True)


TestManifestParity = ManifestParity.TestCase


# ---------------------------------------------------------------------------
# brute-force byte-truncation enumeration
# ---------------------------------------------------------------------------
def _build_manifest(path) -> bytes:
    with GridManifest(path, GRID_KEY) as m:
        for i, key in enumerate(KEYS):
            m.record(_rec(key, DONE if i % 2 == 0 else FAILED, attempts=i + 1))
        m.record(_rec(KEYS[1], DONE, attempts=3))  # newest-per-key must win
    return path.read_bytes()


def _assert_sweep_clean(path):
    mismatches = [
        (cut, actual, expected)
        for cut, actual, expected in truncation_sweep(path, GRID_KEY)
        if actual != expected
    ]
    assert mismatches == []


def test_truncation_sweep_every_byte(tmp_path):
    """Loading any byte-prefix recovers exactly the fully-written records."""
    path = tmp_path / "manifest.jsonl"
    _build_manifest(path)
    _assert_sweep_clean(path)


def test_truncation_sweep_with_duplicate_header(tmp_path):
    path = tmp_path / "manifest.jsonl"
    data = _build_manifest(path)
    path.write_bytes(with_duplicate_header(data, GRID_KEY))
    _assert_sweep_clean(path)


def test_truncation_sweep_with_mismatched_midfile_header(tmp_path):
    path = tmp_path / "manifest.jsonl"
    data = _build_manifest(path)
    path.write_bytes(with_midfile_header(data, GRID_KEY))
    _assert_sweep_clean(path)


def test_prefix_model_rejects_foreign_grid(tmp_path):
    """The model and loader agree a stale header means a full reset."""
    path = tmp_path / "manifest.jsonl"
    data = _build_manifest(path)
    header_ok, records = manifest_prefix_model(data, "some-other-grid")
    assert not header_ok and records == {}
    manifest = GridManifest(path, "some-other-grid")
    manifest.close()
    assert manifest.records == {}
    assert not path.exists()  # stale manifests are reset


# ---------------------------------------------------------------------------
# pinned regressions for the bugs the harness found
# ---------------------------------------------------------------------------
def test_midfile_mismatched_header_does_not_drop_records(tmp_path):
    """Counterexample: header + record + stale-header-line + record.

    The loader used to re-evaluate ``header_ok`` on any mid-file
    ``"type": "manifest"`` line, so the stale line made it drop every
    following record *and* unlink the file.  Only line 0 is a header.
    """
    path = tmp_path / "manifest.jsonl"
    with GridManifest(path, GRID_KEY) as m:
        m.record(_rec("cell0", DONE, attempts=1))
    stale = {"type": "manifest", "version": MANIFEST_VERSION, "grid_key": "stale"}
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(stale, separators=(",", ":")) + "\n")
    with GridManifest(path, GRID_KEY) as m2:
        m2.record(_rec("cell1", DONE, attempts=1))
    reloaded = GridManifest(path, GRID_KEY)
    reloaded.close()
    assert set(reloaded.records) == {"cell0", "cell1"}
    assert path.exists()


def test_midfile_duplicate_matching_header_is_ignored(tmp_path):
    """Two writers racing on an empty file both write the header; both
    records around the duplicate must load."""
    path = tmp_path / "manifest.jsonl"
    with GridManifest(path, GRID_KEY) as m:
        m.record(_rec("cell0", DONE, attempts=1))
    header = {"type": "manifest", "version": MANIFEST_VERSION, "grid_key": GRID_KEY}
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(header, separators=(",", ":")) + "\n")
    with GridManifest(path, GRID_KEY) as m2:
        m2.record(_rec("cell1", FAILED, attempts=2))
    reloaded = GridManifest(path, GRID_KEY)
    reloaded.close()
    assert set(reloaded.records) == {"cell0", "cell1"}


def test_append_after_torn_tail_seals_the_fragment(tmp_path):
    """Counterexample: record a, kill mid-write, record c, kill, resume.

    Without sealing the torn line, record c glued onto the fragment and a
    second resume lost it — despite c's write having been fsynced.
    """
    path = tmp_path / "manifest.jsonl"
    with GridManifest(path, GRID_KEY) as m:
        m.record(_rec("a", DONE, attempts=1))
    with open(path, "ab") as f:
        f.write(b'{"key":"b","workload":"w')  # torn: killed mid-write
    m2 = GridManifest(path, GRID_KEY)
    assert set(m2.records) == {"a"}
    m2.record(_rec("c", DONE, attempts=1))
    m2.close()
    m3 = GridManifest(path, GRID_KEY)
    m3.close()
    assert set(m3.records) == {"a", "c"}
