"""Shard-count invariance: digests must be identical for every legal count.

``session_shard_trace`` runs one TenantSession per shard count over the
same stream; ``parsim_result_digest`` reduces a simulator run to one
string.  The table size (840 = lcm(1..8)) divides evenly by every swept
count, so ``effective_table_size`` — and the logical slot space — is
the same everywhere and any digest difference indicts the partition.

The fast tests sweep the serve-side table for shards 1..8 and the
process-sharded simulator for the counts tier-1 already spawns; the
``slow`` sweep covers every legal power-of-two up to ``max_shards``.
"""

from __future__ import annotations

import pytest

from repro.check import parsim_result_digest, session_shard_trace
from repro.engine.parsim import max_shards
from repro.engine.runner import run_single
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig
from repro.machine.cache_params import CacheParams
from repro.machine.topology import build_machine
from repro.units import KIB
from repro.workloads.producer_consumer import ProducerConsumerWorkload

TABLE_SIZE = 840  # lcm(1..8): every swept shard count divides it


def _small_machine():
    return build_machine(
        2, 2, 2,
        l1=CacheParams("L1", 2 * KIB, 2, 64, 2.0, 1),
        l2=CacheParams("L2", 8 * KIB, 2, 64, 6.0, 2),
        l3=CacheParams("L3", 16 * KIB, 4, 64, 15.0, 3),
    )


def test_session_digest_invariant_for_every_shard_count(machine):
    """ShardedShareTable: shards 1..8 all reproduce the same trace."""
    traces = {
        shards: session_shard_trace(
            machine, shards=shards, table_size=TABLE_SIZE, seed=3
        )
        for shards in range(1, 9)
    }
    reference = traces[1]
    assert reference["comm_events"] > 0  # the stream must exercise detection
    assert reference["updates"], "sweep stream produced no mapping updates"
    for shards, trace in traces.items():
        assert trace == reference, f"shards={shards} diverged from shards=1"


def test_session_digest_invariant_across_seeds(machine):
    """A second stream shape agrees too (guards against a lucky seed)."""
    for seed in (7, 11):
        base = session_shard_trace(machine, shards=1, table_size=TABLE_SIZE, seed=seed)
        for shards in (2, 5, 8):
            trace = session_shard_trace(
                machine, shards=shards, table_size=TABLE_SIZE, seed=seed
            )
            assert trace == base, f"seed={seed} shards={shards}"


def _sim_digest(n_shards: "int | None") -> str:
    settings = RunSettings() if n_shards is None else RunSettings(sim_shards=n_shards)
    result = run_single(
        lambda: ProducerConsumerWorkload(n_threads=8),  # fill the 8-PU machine
        "spcd",
        machine=_small_machine(),
        seed=13,
        config=EngineConfig(steps=8, batch_size=64),
        settings=settings,
    )
    return parsim_result_digest(result)


def test_sim_shards_digest_invariant_small():
    """REPRO_SIM_SHARDS 2 and 4 equal the serial engine, by digest."""
    serial = _sim_digest(None)
    for shards in (2, 4):
        assert _sim_digest(shards) == serial, f"sim_shards={shards}"


@pytest.mark.slow
def test_sim_shards_digest_invariant_every_legal_count():
    """Every legal power-of-two shard count up to max_shards agrees."""
    machine = _small_machine()
    assert max_shards(machine) == 16
    serial = _sim_digest(None)
    shards = 2
    while shards <= max_shards(machine):
        assert _sim_digest(shards) == serial, f"sim_shards={shards}"
        shards *= 2
