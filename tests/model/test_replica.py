"""Page-table replica coherence under interleaved mutator streams (mem/).

Drives the real ``mem/`` stack with a :class:`ReplicatedPageTable`
through every interleaving of the three mutator streams of a placement
run — faults, data-mapper page migrations, SPCD present-bit injection —
and asserts replica coherence plus TLB coherence after every op (see
``repro/check/replica.py``).  The fast tests fully enumerate the 2-node
× 2-page model; the ``slow``-marked test covers the issue's full 2-node
× 4-page model.  A hypothesis stateful machine samples deeper random
schedules of the 4-page model under the shared dev/ci/exhaustive
profiles.

Two negative controls prove the checker has teeth:

* ``broadcast_present=False`` (the replica bug: present bits never
  broadcast) must yield a divergence counterexample;
* ``migrate_noshoot`` (the data-mapper bug: migration without a TLB
  shootdown — exactly what ``DataMapper.apply_moves`` now prevents)
  must yield a stale/wrong-translation counterexample.
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.check import ReplicaModel, check_replica_interleavings, replica_alphabet

N_NODES, N_PAGES = 2, 4


def test_alphabet_covers_every_stream():
    ops = replica_alphabet(N_NODES, N_PAGES, with_noshoot=True)
    kinds = {op[0] for op in ops}
    assert kinds == {"fault", "migrate", "migrate_noshoot", "clear"}
    # one fault op per (node, page), one migrate op per (page, node)
    assert sum(op[0] == "fault" for op in ops) == N_NODES * N_PAGES
    assert sum(op[0] == "migrate" for op in ops) == N_PAGES * N_NODES


def test_replicas_stay_coherent_under_full_enumeration():
    """The real broadcast discipline survives every 2-page schedule."""
    found = check_replica_interleavings(
        n_nodes=2, n_pages=2, max_len=4, tlb_capacity=2
    )
    assert found == []


def test_negative_control_dropped_present_broadcast_is_caught():
    """Dropping the present-bit half of the broadcast must be detected."""
    found = check_replica_interleavings(
        n_nodes=2, n_pages=2, max_len=3, tlb_capacity=2, broadcast_present=False
    )
    assert found, "the checker failed to detect the seeded present-bit bug"
    cx = found[0]
    # minimisation must reduce it to the 1-op essence: the very first
    # fault maps a page on the primary, the replicas never hear present=1
    assert len(cx.ops) == 1
    assert cx.ops[0][0] == "fault"
    assert "diverged" in cx.reason and "present" in cx.reason


def test_negative_control_migration_without_shootdown_is_caught():
    """A migration that skips the TLB shootdown must leave a bad entry."""
    found = check_replica_interleavings(
        n_nodes=2, n_pages=2, max_len=3, tlb_capacity=2, with_noshoot=True
    )
    assert found, "the checker failed to detect the seeded shootdown bug"
    cx = found[0]
    # the 2-op essence: fault caches a translation, the no-shootdown
    # migration remaps the page underneath it
    assert len(cx.ops) == 2
    assert cx.ops[0][0] == "fault"
    assert cx.ops[1][0] == "migrate_noshoot"
    assert "translation" in cx.reason


@pytest.mark.slow
def test_full_two_node_four_page_model():
    """The issue's 2-node × 4-page model, full enumeration."""
    found = check_replica_interleavings(
        n_nodes=2, n_pages=4, max_len=4, tlb_capacity=2
    )
    assert found == []
    found = check_replica_interleavings(
        n_nodes=2, n_pages=4, max_len=2, tlb_capacity=2, broadcast_present=False
    )
    assert found and "diverged" in found[0].reason


class ReplicaCoherence(RuleBasedStateMachine):
    """Random deep schedules of the 4-page model (profile-scaled)."""

    def __init__(self):
        super().__init__()
        self.model = ReplicaModel(N_NODES, N_PAGES, tlb_capacity=2)

    @rule(node=st.integers(0, N_NODES - 1), page=st.integers(0, N_PAGES - 1))
    def fault(self, node, page):
        self.model.apply(("fault", node, page))

    @rule(page=st.integers(0, N_PAGES - 1), node=st.integers(0, N_NODES - 1))
    def migrate(self, page, node):
        self.model.apply(("migrate", page, node))

    @rule(page=st.integers(0, N_PAGES - 1))
    def clear(self, page):
        self.model.apply(("clear", page))

    @invariant()
    def coherent(self):
        reason = self.model.violation()
        assert reason is None, reason
        # the structural page-table invariants must hold too
        assert self.model.space.page_table.consistency_ok()


TestReplicaCoherence = ReplicaCoherence.TestCase
