"""Router crash-replay kill-sweep: SIGKILL after every forwarded index.

``tests/test_serve_router.py`` pins crash recovery at one sampled kill
point (mid-stream); this sweep proves the property at *every* batch
index k — connect, forward k batches, flush (a deterministic sync point:
the worker has processed everything forwarded so far), SIGKILL the
hosting worker, stream the remainder, and require the final digest and
mapping to equal :func:`offline_reference` exactly.  The journal replay
must therefore be exact no matter where in the stream the worker dies —
including before the first batch and after the last one.

The fast test sweeps a short stream completely; the ``slow`` variant
sweeps a longer one (more evaluation ticks and ring wraps between kills).
"""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.serve import (
    AsyncServeClient,
    RoutedMappingServer,
    ServeConfig,
    SessionConfig,
    offline_reference,
    synthetic_fault_stream,
)

N_THREADS = 4
OVERRIDES = {"table_size": 4096, "eval_every_events": 1024}


def _config():
    return ServeConfig(
        host="127.0.0.1",
        port=0,
        metrics_port=None,
        max_sessions=8,
        shards=4,
        eval_every_events=1024,
        credit_window=65536,
        drain_grace_s=5.0,
        workers=1,
        ring_bytes=128 * 1024,
        worker_respawns=2,
        respawn_backoff_s=0.05,
    )


def _reference(machine, stream, flush_after):
    cfg = SessionConfig.from_overrides(
        SessionConfig(n_threads=N_THREADS, shards=4, eval_every_events=1024),
        OVERRIDES,
    )
    return offline_reference(stream, cfg, machine, flush_after=flush_after)


def _kill_hosting_worker(server):
    sess = next(iter(server._remote_sessions.values()))
    handle = server._workers[sess.worker_id]
    os.kill(handle.sup.proc.pid, signal.SIGKILL)


def _run_killed_at(machine, stream, k):
    """Forward k batches, flush, SIGKILL the worker, finish the stream."""

    async def scenario():
        async with RoutedMappingServer(_config(), machine=machine) as server:
            client = await AsyncServeClient.connect(
                "127.0.0.1",
                server.port,
                tenant="victim",
                n_threads=N_THREADS,
                config=OVERRIDES,
            )
            for tid, now_ns, vaddrs in stream[:k]:
                await client.send_events(tid, now_ns, vaddrs)
            await client.flush()
            _kill_hosting_worker(server)
            for tid, now_ns, vaddrs in stream[k:]:
                await client.send_events(tid, now_ns, vaddrs)
            await client.flush()
            summary = await client.close()
            assert server.workers_crashed == 1
            return summary

    return asyncio.run(scenario())


def _sweep(machine, stream, indices):
    ref_cache = {}
    failures = []
    for k in indices:
        flush_after = sorted({k - 1, len(stream) - 1} - {-1})
        key = tuple(flush_after)
        if key not in ref_cache:
            ref_cache[key] = _reference(machine, stream, flush_after)
        ref = ref_cache[key]
        summary = _run_killed_at(machine, stream, k)
        ok = (
            summary["matrix_digest"] == ref.final_digest
            and summary["mapping"] == ref.final_mapping
            and summary["events"] == sum(b[2].size for b in stream)
        )
        if not ok:
            failures.append(
                (k, summary["matrix_digest"], ref.final_digest, summary["mapping"])
            )
    assert failures == [], f"kill indices with divergent replay: {failures}"


def test_killsweep_every_batch_index(machine):
    """Short stream, every kill index 0..n — digest-exact replay each time."""
    stream = list(
        synthetic_fault_stream(N_THREADS, 512, batch_events=256, seed=21)
    )
    assert len(stream) == 8
    _sweep(machine, stream, range(len(stream) + 1))


@pytest.mark.slow
def test_killsweep_long_stream(machine):
    """Longer stream: kills land around evaluation ticks and ring wraps."""
    stream = list(
        synthetic_fault_stream(N_THREADS, 1536, batch_events=256, seed=22)
    )
    assert len(stream) == 24
    _sweep(machine, stream, range(len(stream) + 1))
