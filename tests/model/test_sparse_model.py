"""Stateful model check: SparseCommMatrix vs the dense CommunicationMatrix.

The dense backend *is* the model.  Every rule applies one mutation to both
backends with identical arguments; the invariant is bit-for-bit digest
equality after every step — the same discipline the REPRO_SLOW_* engine
pairs are held to.  Amounts are kept positive (communication volume is
nonnegative by construction; the detector only ever adds unit events).
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.commmatrix import CommunicationMatrix
from repro.core.manager import matrix_digest
from repro.graphs.sparse import SparseCommMatrix

N = 8


class SparseDenseParity(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.dense = CommunicationMatrix(N)
        self.sparse = SparseCommMatrix(N)

    @rule(
        i=st.integers(0, N - 1),
        j=st.integers(0, N - 1),
        amount=st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
    )
    def add(self, i, j, amount):
        self.dense.add(i, j, amount)
        self.sparse.add(i, j, amount)

    @rule(
        i=st.integers(0, N - 1),
        partners=st.lists(st.integers(0, N - 1), min_size=0, max_size=20),
    )
    def add_events(self, i, partners):
        # max_size=20 spans both branches: <=8 scalar, >8 two-dispatch.
        arr = np.asarray(partners, dtype=np.int64)
        self.dense.add_events(i, arr)
        self.sparse.add_events(i, arr)

    @rule(factor=st.floats(0.0, 1.0, allow_nan=False))
    def decay(self, factor):
        self.dense.decay(factor)
        self.sparse.decay(factor)

    @rule(
        seed=st.integers(0, 2**16),
        scale=st.sampled_from([1.0, 0.25, 2.0]),
        sparse_other=st.booleans(),
    )
    def merge(self, seed, scale, sparse_other):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 4, size=(N, N)).astype(float)
        data = data + data.T
        np.fill_diagonal(data, 0.0)
        other = (SparseCommMatrix if sparse_other else CommunicationMatrix)(N, data)
        self.dense.merge(other, scale)
        self.sparse.merge(other, scale)

    @rule()
    def reset(self):
        self.dense.reset()
        self.sparse.reset()

    @rule()
    def replace_with_copy(self):
        self.dense = self.dense.copy()
        self.sparse = self.sparse.copy()

    @invariant()
    def digests_equal(self):
        assert matrix_digest(self.sparse) == matrix_digest(self.dense)
        assert np.array_equal(self.sparse.matrix, self.dense.matrix)

    @invariant()
    def derived_views_agree(self):
        assert self.sparse.nnz() == self.dense.nnz()
        assert self.sparse.total() == self.dense.total()


TestSparseDenseParity = SparseDenseParity.TestCase
