"""Hypothesis profiles for the model-checking suites.

Three profiles, selected with ``--hypothesis-profile=<name>`` (or the
``HYPOTHESIS_PROFILE`` environment variable):

* ``dev`` (default): modest example counts so the suite rides along with
  the plain tier-1 run (``PYTHONPATH=src python -m pytest -x -q``);
* ``ci``: the bounded CI budget — fixed derandomized seed, deadline
  disabled (CI machines stall unpredictably; a deadline would flake),
  sized to keep the whole ``modelcheck`` job under five minutes;
* ``exhaustive``: the deep sweep for local bug hunts, paired with the
  ``slow``-marked enumerator tests (``-m slow`` runs both).

The brute-force enumerators (truncation, kill-sweep, interleavings) are
profile-independent — they enumerate, they don't sample.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

settings.register_profile("dev", max_examples=25, stateful_step_count=30, **_COMMON)
settings.register_profile(
    "ci",
    max_examples=60,
    stateful_step_count=40,
    derandomize=True,
    print_blob=True,
    **_COMMON,
)
settings.register_profile(
    "exhaustive", max_examples=500, stateful_step_count=80, **_COMMON
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
