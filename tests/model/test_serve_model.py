"""MappingServer admission/credit-window/drain vs the explicit table.

The stateful machine runs a *real* :class:`MappingServer` on a loopback
socket and drives raw protocol frames against it, mirroring every step
in :class:`repro.check.ServeModel` — admission verdict by verdict,
credit by credit, summary by summary.  Detection content (digests,
mappings) is pinned elsewhere; this machine checks the protocol state
machine around it: refusal codes and their precedence, the enforced
``2 × credit_window`` ceiling, exact per-batch crediting, SUMMARY event
counts, and the no-admission-after-drain rule.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.check import ServeModel
from repro.errors import AdmissionError
from repro.serve import MappingServer, ServeConfig, protocol
from repro.serve.protocol import MsgType

MAX_SESSIONS = 2
CREDIT_WINDOW = 256
TIMEOUT = 5.0

HELLO_KINDS = {
    "ok": {},
    "bad-version": {"version": 999},
    "no-tenant": {"tenant": None},
    "bad-threads": {"n_threads": 1},
    "unknown-key": {"config": {"nope": 1}},
    "too-large": {"config": {"table_size": 100_000_000}},
}


def _hello(cid: int, kind: str) -> dict:
    payload = {
        "tenant": f"tenant-{cid}",
        "n_threads": 2,
        "version": protocol.PROTOCOL_VERSION,
        "config": {"table_size": 512},
    }
    payload.update(HELLO_KINDS[kind])
    if payload.get("tenant") is None:
        del payload["tenant"]
    return payload


class ServeParity(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.loop = asyncio.new_event_loop()
        self.server = MappingServer(
            ServeConfig(
                port=0,
                metrics_port=None,
                max_sessions=MAX_SESSIONS,
                credit_window=CREDIT_WINDOW,
                eval_every_events=1 << 30,  # no cadence MAPPINGs mid-stream
                drain_grace_s=0.2,
            )
        )
        self.loop.run_until_complete(self.server.start())
        self.port = self.server.port
        self.model = ServeModel(MAX_SESSIONS, CREDIT_WINDOW)
        self.streams: "dict[int, tuple]" = {}  # cid -> (reader, writer)
        self.next_cid = 0
        self.drained = False

    # -- plumbing -----------------------------------------------------------
    def _run(self, coro):
        return self.loop.run_until_complete(asyncio.wait_for(coro, TIMEOUT))

    def _send(self, cid, data):
        _, writer = self.streams[cid]
        self._run(protocol.write_frame(writer, data))

    def _read(self, cid, *, skip=(MsgType.MAPPING,)):
        reader, _ = self.streams[cid]
        while True:
            frame = self._run(protocol.read_frame(reader))
            if frame is not None and frame.type in skip:
                continue
            return frame

    def _close(self, cid):
        _, writer = self.streams.pop(cid)
        writer.close()

    # -- rules --------------------------------------------------------------
    @precondition(lambda self: not self.drained)
    @rule(kind=st.sampled_from(sorted(HELLO_KINDS)))
    def connect(self, kind):
        cid = self.next_cid
        self.next_cid += 1
        reader, writer = self._run(
            asyncio.open_connection("127.0.0.1", self.port)
        )
        self.streams[cid] = (reader, writer)
        self._run(
            protocol.write_frame(
                writer, protocol.encode(MsgType.HELLO, _hello(cid, kind))
            )
        )
        expected = self.model.admit(cid, kind)
        frame = self._read(cid)
        if expected is None:
            assert frame.type is MsgType.WELCOME
            assert frame.payload["credits"] == CREDIT_WINDOW
        else:
            assert frame.type is MsgType.ERROR
            assert frame.payload["code"] == expected
            self._close(cid)

    def _open_cids(self):
        return sorted(cid for cid, s in self.model.conns.items()
                      if s == "open" and cid in self.streams)

    @precondition(lambda self: not self.drained and self._open_cids())
    @rule(data=st.data(), n=st.integers(min_value=0, max_value=2 * CREDIT_WINDOW))
    def send_events_and_await_credit(self, data, n):
        """A well-behaved client: every batch is credited back exactly."""
        cid = data.draw(st.sampled_from(self._open_cids()), label="cid")
        tid = data.draw(st.integers(min_value=0, max_value=1), label="tid")
        assert self.model.events(cid, n) is None  # within the window by design
        self._send(cid, protocol.encode_events(tid, 0, np.zeros(n, dtype=np.int64)))
        frame = self._read(cid)
        assert frame.type is MsgType.CREDIT
        assert frame.payload["events"] == n
        self.model.credited(cid, n)

    @precondition(lambda self: not self.drained and self._open_cids())
    @rule(data=st.data())
    def overrun_window(self, data):
        """One frame past the enforced ceiling draws the protocol error.

        A *single* oversized batch makes the overrun deterministic: the
        reader trips the ceiling before the inline processor can drain
        anything.  (Spread over several frames the enforcement is
        intentionally racy — a fast processor may absorb them, which is
        backpressure working, not a bug.)
        """
        cid = data.draw(st.sampled_from(self._open_cids()), label="cid")
        batch = np.zeros(2 * CREDIT_WINDOW + 1, dtype=np.int64)
        assert self.model.events(cid, batch.size) == "overrun"
        self._send(cid, protocol.encode_events(0, 0, batch))
        frame = self._read(cid, skip=(MsgType.MAPPING, MsgType.CREDIT))
        assert frame.type is MsgType.ERROR
        assert frame.payload["code"] == "protocol"
        assert "credit window" in frame.payload["message"]
        self._close(cid)

    @precondition(lambda self: not self.drained and self._open_cids())
    @rule(data=st.data())
    def bye(self, data):
        cid = data.draw(st.sampled_from(self._open_cids()), label="cid")
        expected_events = self.model.bye(cid)
        self._send(cid, protocol.encode(MsgType.BYE, {}))
        frame = self._read(cid, skip=(MsgType.MAPPING, MsgType.CREDIT))
        assert frame.type is MsgType.SUMMARY
        assert frame.payload["events"] == expected_events
        assert frame.payload["reason"] == "bye"
        self._close(cid)

    @precondition(lambda self: not self.drained)
    @rule()
    def drain(self):
        expected = self.model.drain()
        self.drained = True
        drain_task = self.loop.create_task(self.server.drain("modelcheck"))
        for cid, events in sorted(expected.items()):
            frame = self._read(cid, skip=(MsgType.MAPPING, MsgType.CREDIT))
            assert frame.type is MsgType.DRAINING
            frame = self._read(cid, skip=(MsgType.MAPPING, MsgType.CREDIT))
            assert frame.type is MsgType.SUMMARY
            assert frame.payload["events"] == events
            assert frame.payload["reason"] == "drain"
            self._close(cid)
        self._run(drain_task)
        # admission while draining refuses with the dedicated code
        with pytest.raises(AdmissionError) as exc:
            self.server._admit(_hello(self.next_cid, "ok"))
        assert exc.value.code == "draining"
        assert self.model.admit(self.next_cid, "ok") == "draining"

    @precondition(lambda self: self.drained)
    @rule()
    def connect_after_drain_is_refused(self):
        """The listener is closed once the drain begins."""
        with pytest.raises((ConnectionError, OSError, asyncio.TimeoutError)):
            self._run(asyncio.open_connection("127.0.0.1", self.port))

    # -- invariants ---------------------------------------------------------
    @invariant()
    def totals_match(self):
        # a session's finally-block cleanup runs a loop tick after its last
        # frame reaches us; pump the loop until the server settles
        live = sum(1 for s in self.model.conns.values() if s == "open")
        deadline = self.loop.time() + TIMEOUT
        while len(self.server._connections) != live and self.loop.time() < deadline:
            self.loop.run_until_complete(asyncio.sleep(0.005))
        assert len(self.server._connections) == live
        assert self.server.events_total == sum(self.model.total_events.values())

    def teardown(self):
        for cid in list(self.streams):
            self._close(cid)
        if not self.drained:
            self.loop.run_until_complete(self.server.drain("teardown"))
        self.loop.close()


TestServeParity = ServeParity.TestCase
