"""Tests for the page-fault pipeline and its hooks."""

import pytest

from repro.errors import PageFaultError
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultInfo, FaultKind, FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.mem.tlb import TlbArray
from repro.units import PAGE_SIZE


@pytest.fixture
def pipeline():
    space = AddressSpace(256)
    space.mmap("data", 16 * PAGE_SIZE)
    frames = FrameAllocator(2, 1000)
    tlbs = TlbArray(4)
    return FaultPipeline(space, frames, tlbs, node_of_pu=lambda pu: pu % 2)


def _addr(pipeline, page=0):
    return pipeline.address_space.region("data").base + page * PAGE_SIZE


class TestFirstTouch:
    def test_first_touch_allocates_on_local_node(self, pipeline):
        info = pipeline.handle_fault(0, 1, _addr(pipeline), is_write=False, now_ns=0)
        assert info.kind is FaultKind.FIRST_TOUCH
        assert info.home_node == 1  # pu 1 -> node 1

    def test_page_present_after_first_touch(self, pipeline):
        info = pipeline.handle_fault(0, 0, _addr(pipeline), is_write=True, now_ns=0)
        table = pipeline.address_space.page_table
        assert table.is_present(info.vpn)
        assert table.entry(info.vpn).dirty

    def test_tlb_filled(self, pipeline):
        info = pipeline.handle_fault(0, 2, _addr(pipeline), is_write=False, now_ns=0)
        assert info.vpn in pipeline.tlbs[2]

    def test_fault_on_present_page_rejected(self, pipeline):
        pipeline.handle_fault(0, 0, _addr(pipeline), is_write=False, now_ns=0)
        with pytest.raises(PageFaultError):
            pipeline.handle_fault(0, 0, _addr(pipeline), is_write=False, now_ns=1)

    def test_counters(self, pipeline):
        pipeline.handle_fault(0, 0, _addr(pipeline, 0), is_write=False, now_ns=0)
        pipeline.handle_fault(0, 0, _addr(pipeline, 1), is_write=False, now_ns=0)
        assert pipeline.first_touch_faults == 2
        assert pipeline.total_faults == 2
        assert pipeline.fault_time_ns == 2 * pipeline.first_touch_cost_ns


class TestInjectedFaults:
    def test_injected_fault_restores_present(self, pipeline):
        info = pipeline.handle_fault(0, 0, _addr(pipeline), is_write=False, now_ns=0)
        table = pipeline.address_space.page_table
        table.clear_present(info.vpn)
        info2 = pipeline.handle_fault(1, 1, _addr(pipeline), is_write=False, now_ns=10)
        assert info2.kind is FaultKind.INJECTED
        assert table.is_present(info.vpn)
        # frame unchanged: injected faults do not reallocate
        assert info2.home_node == info.home_node

    def test_injected_fraction(self, pipeline):
        table = pipeline.address_space.page_table
        for page in range(9):
            pipeline.handle_fault(0, 0, _addr(pipeline, page), is_write=False, now_ns=0)
        info = pipeline.handle_fault(0, 0, _addr(pipeline, 9), is_write=False, now_ns=0)
        table.clear_present(info.vpn)
        pipeline.handle_fault(1, 1, _addr(pipeline, 9), is_write=False, now_ns=1)
        assert pipeline.injected_faults == 1
        assert pipeline.injected_fraction() == pytest.approx(1 / 11)

    def test_injected_cheaper_than_first_touch(self, pipeline):
        assert pipeline.injected_cost_ns < pipeline.first_touch_cost_ns


class TestHooks:
    def test_hook_sees_fault_info(self, pipeline):
        seen: list[FaultInfo] = []
        pipeline.add_hook(seen.append)
        pipeline.handle_fault(3, 1, _addr(pipeline) + 123, is_write=True, now_ns=55)
        assert len(seen) == 1
        info = seen[0]
        assert info.thread_id == 3 and info.pu_id == 1
        assert info.vaddr % PAGE_SIZE == 123
        assert info.now_ns == 55 and info.is_write

    def test_hook_removal(self, pipeline):
        seen = []
        pipeline.add_hook(seen.append)
        pipeline.remove_hook(seen.append)
        pipeline.handle_fault(0, 0, _addr(pipeline), is_write=False, now_ns=0)
        assert not seen

    def test_hook_time_charged_separately(self, pipeline):
        pipeline.add_hook(lambda info: pipeline.charge_hook_time(100.0))
        pipeline.handle_fault(0, 0, _addr(pipeline), is_write=False, now_ns=0)
        assert pipeline.hook_time_ns == 100.0


class TestFaultingMask:
    def test_mask_tracks_present_bits(self, pipeline):
        region = pipeline.address_space.region("data")
        vpns = region.vpns()[:4]
        assert pipeline.faulting_mask(vpns).all()
        pipeline.handle_fault(0, 0, _addr(pipeline, 1), is_write=False, now_ns=0)
        mask = pipeline.faulting_mask(vpns)
        assert mask.tolist() == [True, False, True, True]
