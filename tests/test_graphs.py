"""Tests for the graph layer: CSR graphs, generators, Matrix-Market I/O,
row partitioning and the graph-driven workloads."""

import numpy as np
import pytest

from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import ConfigurationError, WorkloadError
from repro.graphs import (
    CsrGraph,
    PartitionPageRankWorkload,
    SpmvHaloWorkload,
    load_matrix_market,
    make_pagerank,
    make_spmv,
    partition_comm_matrix,
    partition_rows,
    powerlaw_graph,
    rmat_graph,
    save_matrix_market,
)
from repro.units import MSEC


class TestCsrGraph:
    def test_from_edges_symmetrises(self):
        g = CsrGraph.from_edges(4, np.array([0, 1]), np.array([1, 2]))
        dense = g.to_dense()
        assert np.array_equal(dense, dense.T)
        assert dense[0, 1] == dense[1, 0] == 1.0
        assert g.n_edges == 2

    def test_self_loops_dropped(self):
        g = CsrGraph.from_edges(3, np.array([0, 1, 2]), np.array([0, 2, 2]))
        assert g.n_edges == 1
        assert np.trace(g.to_dense()) == 0.0

    def test_duplicate_edges_coalesce_into_weights(self):
        g = CsrGraph.from_edges(3, np.array([0, 0, 0]), np.array([1, 1, 1]))
        assert g.n_edges == 1
        assert g.to_dense()[0, 1] == 3.0

    def test_explicit_weights_sum(self):
        g = CsrGraph.from_edges(
            3, np.array([0, 1, 0]), np.array([1, 0, 2]),
            np.array([2.0, 3.0, 1.5]),
        )
        dense = g.to_dense()
        assert dense[0, 1] == 5.0  # both directions of the same edge coalesce
        assert dense[0, 2] == 1.5

    def test_rows_sorted_ascending(self):
        g = CsrGraph.from_edges(5, np.array([2, 2, 2]), np.array([4, 0, 3]))
        ids, _ = g.row(2)
        assert ids.tolist() == sorted(ids.tolist())

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            CsrGraph.from_edges(3, np.array([0]), np.array([3]))

    def test_degrees_match_indptr(self):
        g = CsrGraph.from_edges(4, np.array([0, 0, 1]), np.array([1, 2, 3]))
        assert g.degrees().tolist() == [2, 2, 1, 1]


class TestGenerators:
    @pytest.mark.parametrize("gen", [rmat_graph, powerlaw_graph])
    def test_deterministic_per_seed(self, gen):
        a, b = gen(64, seed=5), gen(64, seed=5)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.weights, b.weights)
        c = gen(64, seed=6)
        assert not (
            np.array_equal(a.indptr, c.indptr)
            and np.array_equal(a.indices, c.indices)
        )

    @pytest.mark.parametrize("gen", [rmat_graph, powerlaw_graph])
    def test_skewed_degree_distribution(self, gen):
        """Both generators must produce hubs, unlike a regular lattice."""
        g = gen(256, 8.0, seed=1)
        deg = g.degrees().astype(float)
        assert deg.max() > 4.0 * deg.mean()

    def test_rmat_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            rmat_graph(1)
        with pytest.raises(ConfigurationError):
            rmat_graph(16, a=0.9, b=0.9, c=0.9)

    def test_powerlaw_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            powerlaw_graph(16, exponent=1.0)


class TestMatrixMarket:
    def test_round_trip_exact(self, tmp_path):
        g = rmat_graph(64, 6.0, seed=3)
        path = tmp_path / "g.mtx"
        save_matrix_market(g, path)
        h = load_matrix_market(path)
        assert h.n == g.n
        assert np.array_equal(h.indptr, g.indptr)
        assert np.array_equal(h.indices, g.indices)
        assert np.array_equal(h.weights, g.weights)

    def test_general_and_pattern_formats(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% a comment\n"
            "3 3 2\n"
            "1 2\n"
            "3 1\n"
        )
        g = load_matrix_market(path)
        assert g.n == 3 and g.n_edges == 2
        assert g.to_dense()[0, 1] == 1.0

    def test_values_become_absolute_weights(self, tmp_path):
        path = tmp_path / "v.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 1\n"
            "2 1 -3.5\n"
        )
        assert load_matrix_market(path).to_dense()[0, 1] == 3.5

    def test_rejects_non_square(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1.0\n"
        )
        with pytest.raises(WorkloadError, match="square"):
            load_matrix_market(path)

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix\n")
        with pytest.raises(WorkloadError, match="Matrix-Market"):
            load_matrix_market(path)

    def test_rejects_entry_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 1.0\n"
        )
        with pytest.raises(WorkloadError, match="promised"):
            load_matrix_market(path)


class TestPartitioning:
    def test_blocks_balanced_within_one(self):
        parts = partition_rows(10, 3)
        sizes = np.bincount(parts)
        assert sizes.tolist() == [4, 3, 3]
        assert parts.tolist() == sorted(parts.tolist())  # contiguous blocks

    def test_invalid_part_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_rows(4, 5)
        with pytest.raises(ConfigurationError):
            partition_rows(4, 0)

    def test_comm_matrix_counts_cross_edges_only(self):
        # 0-1 intra-part, 1-2 and 3-0 cross (parts: {0,1}, {2,3})
        g = CsrGraph.from_edges(
            4, np.array([0, 1, 3]), np.array([1, 2, 0]),
            np.array([5.0, 2.0, 1.0]),
        )
        comm = partition_comm_matrix(g, partition_rows(4, 2), 2)
        assert comm[0, 1] == comm[1, 0] == 3.0  # 2.0 + 1.0, 5.0 stays internal
        assert np.trace(comm) == 0.0

    def test_comm_matrix_symmetric_for_generated_graphs(self):
        g = powerlaw_graph(128, 8.0, seed=2)
        comm = partition_comm_matrix(g, partition_rows(128, 8), 8)
        assert np.array_equal(comm, comm.T)
        assert comm.shape == (8, 8)

    def test_parts_shape_validated(self):
        g = rmat_graph(16, 4.0, seed=0)
        with pytest.raises(ConfigurationError):
            partition_comm_matrix(g, np.zeros(8, dtype=np.int64), 2)


class TestWorkloads:
    def test_factories_build_both_generators(self):
        assert make_spmv(8, generator="rmat").n_threads == 8
        assert make_pagerank(8, generator="powerlaw").n_threads == 8
        with pytest.raises(WorkloadError, match="unknown graph generator"):
            make_spmv(8, generator="metis")

    def test_too_few_vertices_rejected(self):
        g = rmat_graph(4, 2.0, seed=0)
        with pytest.raises(WorkloadError):
            SpmvHaloWorkload(g, 8)

    def test_ground_truth_matches_partition_matrix(self):
        wl = make_spmv(8, seed=4)
        expected = partition_comm_matrix(wl.graph, wl.parts, 8)
        assert np.array_equal(wl.ground_truth().matrix, expected)

    def test_ground_truth_is_irregular(self):
        """The whole point: power-law graphs give heterogeneous patterns."""
        wl = make_spmv(16, generator="powerlaw", seed=1)
        assert wl.ground_truth().heterogeneity() > 0.5

    def test_pagerank_phase_alternates_write_mix(self):
        wl = make_pagerank(4, n_vertices=64, seed=0)
        assert wl.phase_at(0) == 0
        assert wl.phase_at(150 * MSEC) == 1
        assert wl.phase_at(300 * MSEC) == 0

    def test_pagerank_rejects_bad_period(self):
        g = rmat_graph(64, 4.0, seed=0)
        with pytest.raises(WorkloadError):
            PartitionPageRankWorkload(g, 4, phase_period_ns=0)

    @pytest.mark.parametrize("factory", [make_spmv, make_pagerank])
    def test_detector_recovers_the_pattern(self, factory):
        """End to end: SPCD on the fault stream finds the halo structure."""
        wl = factory(8, n_vertices=256, seed=2)
        sim = Simulator(wl, "spcd", seed=7, config=EngineConfig(steps=120, batch_size=64))
        res = sim.run()
        assert res.detected_matrix is not None
        assert res.detected_matrix.correlation(wl.ground_truth()) > 0.5

    def test_runs_deterministically(self):
        cfg = EngineConfig(steps=40, batch_size=64)
        a = Simulator(make_spmv(8, seed=3), "spcd", seed=5, config=cfg).run()
        b = Simulator(make_spmv(8, seed=3), "spcd", seed=5, config=cfg).run()
        assert a.exec_time_s == b.exec_time_s
        assert np.array_equal(a.detected_matrix.matrix, b.detected_matrix.matrix)
