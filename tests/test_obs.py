"""Tests for the structured tracing subsystem (repro.obs)."""

from __future__ import annotations

import json
import os
from functools import partial

from repro.engine.gridrunner import run_cell, run_grid
from repro.engine.runner import run_single
from repro.engine.simulator import EngineConfig, Simulator
from repro.obs.events import RunStart, event_types
from repro.obs.recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    NullRecorder,
    cell_trace_path,
    run_trace_path,
)
from repro.obs.report import main as report_main
from repro.obs.report import reconstruct_runs, report_paths
from repro.workloads.npb import make_npb
from repro.workloads.producer_consumer import ProducerConsumerWorkload

CFG = EngineConfig(steps=40, batch_size=128)


def _events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def _masked(events):
    """Events with the wall-clock (host-timing) fields removed."""
    out = []
    for ev in events:
        ev = dict(ev)
        ev.pop("perf", None)
        ev.pop("perf_other_s", None)
        ev.pop("decide_wall_s", None)
        out.append(ev)
    return out


# ---------------------------------------------------------------------------
# recorder mechanics
# ---------------------------------------------------------------------------
def test_jsonl_recorder_is_atomic_per_run(tmp_path):
    path = tmp_path / "t.jsonl"
    rec = JsonlRecorder(path)
    rec.emit(RunStart(workload="w", policy="os", seed=1, n_threads=2, steps=3, batch_size=4))
    # nothing published until close; the in-flight file is a *.tmp sibling
    assert not path.exists()
    assert list(tmp_path.glob("*.tmp"))
    rec.close()
    assert path.exists() and not list(tmp_path.glob("*.tmp"))
    (ev,) = _events(path)
    assert ev["type"] == "run_start" and ev["workload"] == "w"
    # close is idempotent; a closed recorder drops events
    rec.close()
    rec.emit(RunStart(workload="x", policy="os", seed=1, n_threads=2, steps=3, batch_size=4))
    assert len(_events(path)) == 1


def test_unused_recorder_leaves_no_file(tmp_path):
    rec = JsonlRecorder(tmp_path / "t.jsonl")
    rec.close()
    assert list(tmp_path.iterdir()) == []


def test_null_recorder_is_falsy():
    assert not NullRecorder()
    assert not NULL_RECORDER
    assert JsonlRecorder("/nonexistent/x.jsonl")  # truthy without touching disk


def test_trace_path_naming(tmp_path):
    f = tmp_path / "t.jsonl"
    assert run_trace_path(f, "CG", "spcd", 3) == f
    assert run_trace_path(tmp_path, "CG", "spcd", 3) == tmp_path / "run-CG-spcd-seed3.jsonl"
    # hostile characters are slugged out
    assert "/" not in run_trace_path(tmp_path, "a/b:c", "os", 1).name[4:]
    assert cell_trace_path(tmp_path, "CG", "os", 2) == tmp_path / "CG-os-rep2.jsonl"
    assert cell_trace_path(f, "CG", "os", 2) == tmp_path / "t-CG-os-rep2.jsonl"


def test_event_types_registry_is_complete():
    kinds = event_types()
    assert {"run_start", "run_end", "fault_batch", "injector_wake", "tlb_shootdown",
            "spcd_evaluation", "mapping_decision", "migration", "cache_epoch",
            "placement_applied",
            "grid_start", "grid_end", "cell_attempt_failed", "cell_retry",
            "cell_completed", "cell_failed",
            "serve_start", "serve_session_start", "serve_evaluation",
            "serve_session_end", "serve_end",
            "serve_worker_start", "serve_worker_crash",
            "serve_tenant_migrated"} == set(kinds)


# ---------------------------------------------------------------------------
# tracing a simulation
# ---------------------------------------------------------------------------
def test_trace_stream_is_deterministic_modulo_wall_clock(tmp_path):
    """Same seed -> byte-identical event stream, once host timing is masked."""
    paths = []
    for i in range(2):
        p = tmp_path / f"run{i}.jsonl"
        Simulator(
            make_npb("CG"), "spcd", seed=5, config=CFG, recorder=JsonlRecorder(p)
        ).run()
        paths.append(p)
    a, b = (_events(p) for p in paths)
    assert _masked(a) == _masked(b)
    # ... and the wall-clock field genuinely exists on the run_end event
    assert a[-1]["type"] == "run_end" and "wall_s" in a[-1]["perf"]


def test_tracing_does_not_perturb_the_simulation(tmp_path):
    """A traced run and an untraced run are the same simulation."""
    traced = Simulator(
        make_npb("CG"), "spcd", seed=9, config=CFG,
        recorder=JsonlRecorder(tmp_path / "t.jsonl"),
    ).run()
    plain = Simulator(make_npb("CG"), "spcd", seed=9, config=CFG).run()
    assert traced.exec_time_s == plain.exec_time_s
    assert traced.migrations == plain.migrations
    assert traced.stats.snapshot() == plain.stats.snapshot()
    assert traced.detection_pct == plain.detection_pct


def test_trace_reconstructs_table2_and_fig16_exactly(tmp_path):
    """The report reproduces migrations and the overhead split bit-for-bit."""
    p = tmp_path / "t.jsonl"
    cfg = EngineConfig(steps=60, batch_size=128)
    result = Simulator(
        ProducerConsumerWorkload(n_threads=32), "spcd", seed=7, config=cfg,
        recorder=JsonlRecorder(p),
    ).run()
    (report,) = report_paths([p])
    assert report.errors == []
    assert report.migrations == result.migrations
    assert report.detection_pct == result.detection_pct
    assert report.mapping_pct == result.mapping_pct
    assert report.first_touch_faults == result.first_touch_faults
    assert report.injected_faults == result.injected_faults
    assert report.injected_ratio == result.injected_ratio
    assert report.workload == result.workload and report.policy == "spcd"
    # the decision trail is present, not just the totals
    assert report.evaluations > 0 and report.injector_wakes > 0
    assert sum(report.verdicts.values()) == report.evaluations


def test_trace_reconstruction_os_policy(tmp_path):
    """Non-SPCD runs trace too: zero overhead split, zero migrations."""
    p = tmp_path / "t.jsonl"
    result = Simulator(
        make_npb("CG"), "os", seed=3, config=CFG, recorder=JsonlRecorder(p)
    ).run()
    (report,) = report_paths([p])
    assert report.errors == []
    assert report.migrations == result.migrations == 0
    assert report.detection_pct == result.detection_pct == 0.0
    assert report.mapping_pct == result.mapping_pct == 0.0
    assert report.first_touch_faults == result.first_touch_faults > 0


def test_report_cross_check_flags_tampered_trace(tmp_path):
    p = tmp_path / "t.jsonl"
    Simulator(
        ProducerConsumerWorkload(n_threads=32), "spcd", seed=7,
        config=EngineConfig(steps=60, batch_size=128), recorder=JsonlRecorder(p),
    ).run()
    events = [e for e in _events(p) if e["type"] != "migration"]
    assert len(events) < len(_events(p)), "run must have migrated for this test"
    (report,) = reconstruct_runs(events)
    assert any("migrations" in err for err in report.errors)


def test_perf_counters_fold_into_run_end(tmp_path):
    p = tmp_path / "t.jsonl"
    result = Simulator(
        make_npb("CG"), "os", seed=3, config=CFG, recorder=JsonlRecorder(p)
    ).run()
    end = _events(p)[-1]
    assert end["type"] == "run_end"
    assert end["perf"]["accesses"] == result.perf.accesses
    assert end["perf"]["faults"] == result.perf.faults
    assert end["perf_other_s"] == result.perf.other_s
    # the cache epoch carries the hierarchy counters
    epoch = [e for e in _events(p) if e["type"] == "cache_epoch"][-1]
    assert epoch["stats"] == result.stats.as_dict()


def test_env_var_enables_tracing(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
    result = run_single(partial(make_npb, "CG"), "os", seed=2, config=CFG)
    files = list(tmp_path.glob("run-*.jsonl"))
    assert len(files) == 1
    (report,) = report_paths(files)
    assert report.first_touch_faults == result.first_touch_faults


# ---------------------------------------------------------------------------
# grid integration
# ---------------------------------------------------------------------------
def test_run_grid_writes_per_cell_traces(tmp_path, monkeypatch):
    trace_dir = tmp_path / "traces"
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_TRACE", str(trace_dir))
    grid = run_grid(
        ["CG"], ["os", "spcd"], 2,
        base_seed=11, config=CFG, workers=2, cache=cache_dir,
    )
    cell_files = sorted(
        p.name for p in trace_dir.glob("*.jsonl") if not p.name.startswith("grid-")
    )
    assert cell_files == [
        "CG-os-rep0.jsonl", "CG-os-rep1.jsonl",
        "CG-spcd-rep0.jsonl", "CG-spcd-rep1.jsonl",
    ]
    # ... and the sweep's reliability events land in their own grid trace
    grid_files = sorted(p for p in trace_dir.glob("grid-*.jsonl"))
    assert len(grid_files) == 1
    grid_events = _events(grid_files[0])
    assert grid_events[0]["type"] == "grid_start"
    assert grid_events[-1]["type"] == "grid_end"
    assert grid_events[-1]["completed"] == 4
    reports = report_paths(sorted(trace_dir.glob("CG-*.jsonl")))
    assert all(r.errors == [] for r in reports)
    # the traced migration counts aggregate to the grid's Table II cell
    spcd_migrations = [r.migrations for r in reports if r.policy == "spcd"]
    assert sorted(spcd_migrations) == sorted(
        grid.cell("CG", "spcd").metrics["migrations"].values
    )
    # cached cells don't re-run: a second grid adds no *cell* trace files
    # (it still records its own grid reliability trace, beside the first)
    for f in trace_dir.glob("*.jsonl"):
        f.unlink()
    second = run_grid(
        ["CG"], ["os", "spcd"], 2,
        base_seed=11, config=CFG, workers=2, cache=cache_dir,
    )
    assert second.cache_hits == 4
    assert [p for p in trace_dir.glob("*.jsonl") if not p.name.startswith("grid-")] == []


def test_run_cell_trace_kwarg(tmp_path):
    result, cached = run_cell(
        "CG", "spcd", 1, base_seed=5, config=CFG, trace=tmp_path
    )
    assert not cached
    (report,) = report_paths([tmp_path / "CG-spcd-rep1.jsonl"])
    assert report.errors == []
    assert report.migrations == result.migrations
    assert report.detection_pct == result.detection_pct


def test_trace_config_is_excluded_from_cache_keys(tmp_path):
    cache_dir = tmp_path / "cache"
    r1, cached1 = run_cell("CG", "os", 0, base_seed=5, config=CFG,
                           cache=cache_dir, trace=tmp_path / "a")
    r2, cached2 = run_cell("CG", "os", 0, base_seed=5, config=CFG,
                           cache=cache_dir, trace=tmp_path / "b")
    assert (cached1, cached2) == (False, True)
    # the cached hit did not re-run, so no second trace was written
    assert list((tmp_path / "a").glob("*.jsonl")) != []
    assert not (tmp_path / "b").exists()


# ---------------------------------------------------------------------------
# report CLI
# ---------------------------------------------------------------------------
def test_report_cli(tmp_path, capsys):
    p = tmp_path / "t.jsonl"
    Simulator(make_npb("CG"), "spcd", seed=5, config=CFG, recorder=JsonlRecorder(p)).run()
    assert report_main([str(p)]) == 0
    table = capsys.readouterr().out
    assert "workload" in table and "CG" in table and "spcd" in table

    assert report_main([str(p), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["workload"] == "CG" and payload[0]["errors"] == []


def test_report_cli_flags_bad_trace(tmp_path, capsys):
    p = tmp_path / "t.jsonl"
    Simulator(
        ProducerConsumerWorkload(n_threads=32), "spcd", seed=7,
        config=EngineConfig(steps=60, batch_size=128), recorder=JsonlRecorder(p),
    ).run()
    lines = [line for line in p.read_text().splitlines()
             if json.loads(line)["type"] != "migration"]
    p.write_text("\n".join(lines) + "\n")
    assert report_main([str(p)]) == 1
    assert "!!" in capsys.readouterr().out


def test_report_cli_module_entrypoint(tmp_path):
    """`python -m repro.obs.report` works (the documented CLI)."""
    import subprocess
    import sys

    import repro

    p = tmp_path / "t.jsonl"
    Simulator(make_npb("CG"), "os", seed=1, config=CFG, recorder=JsonlRecorder(p)).run()
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(repro.__file__))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.report", str(p)],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "CG" in proc.stdout
