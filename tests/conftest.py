"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.topology import build_machine, dual_xeon_e5_2650


@pytest.fixture
def machine():
    """The paper's evaluation machine (2 sockets x 8 cores x 2 SMT)."""
    return dual_xeon_e5_2650()


@pytest.fixture
def small_machine():
    """A small machine (2 sockets x 2 cores x 2 SMT = 8 PUs) for fast tests."""
    return build_machine(2, 2, 2, name="small")


@pytest.fixture
def single_socket_machine():
    """One socket, four cores, no SMT."""
    return build_machine(1, 4, 1, name="uniproc")


@pytest.fixture
def rng():
    """Deterministic generator for tests."""
    return np.random.default_rng(1234)
