"""Tests for the additional-page-fault injector."""

import numpy as np
import pytest

from repro.core.injector import FaultInjector, InjectorMode
from repro.errors import ConfigurationError
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.mem.tlb import TlbArray
from repro.units import PAGE_SIZE


@pytest.fixture
def env(rng):
    space = AddressSpace(512)
    space.mmap("data", 64 * PAGE_SIZE)
    tlbs = TlbArray(4)
    pipeline = FaultPipeline(space, FrameAllocator(1, 1000), tlbs, node_of_pu=lambda pu: 0)
    return space, pipeline, tlbs, rng


def touch_all(space, pipeline, n_threads=2):
    region = space.region("data")
    for i, vpn in enumerate(region.vpns()):
        pipeline.handle_fault(i % n_threads, 0, int(vpn) * PAGE_SIZE, is_write=False, now_ns=0)


class TestBudget:
    def test_no_clear_without_mapped_pages(self, env):
        space, pipeline, tlbs, rng = env
        inj = FaultInjector(pipeline, rng, mode=InjectorMode.STEADY, floor_per_wake=8)
        assert inj.wake(0) == 0

    def test_steady_floor_clears_pages(self, env):
        space, pipeline, tlbs, rng = env
        touch_all(space, pipeline)
        inj = FaultInjector(
            pipeline, rng, mode=InjectorMode.STEADY, floor_per_wake=8, sampling="uniform"
        )
        assert inj.wake(0) == 8
        assert inj.cleared_total == 8

    def test_cumulative_mode_respects_ratio(self, env):
        """Paper-literal controller: injected <= ratio/(1-ratio) * natural."""
        space, pipeline, tlbs, rng = env
        touch_all(space, pipeline)  # 64 natural faults
        inj = FaultInjector(
            pipeline,
            rng,
            target_ratio=0.10,
            mode=InjectorMode.CUMULATIVE,
            max_per_wake=1000,
            sampling="uniform",
        )
        cleared = inj.wake(0)
        assert cleared == int(0.1 / 0.9 * 64)  # 7

    def test_cumulative_accounts_in_flight(self, env):
        space, pipeline, tlbs, rng = env
        touch_all(space, pipeline)
        inj = FaultInjector(
            pipeline, rng, mode=InjectorMode.CUMULATIVE, sampling="uniform"
        )
        first = inj.wake(0)
        # None of the cleared pages re-faulted yet: second wake clears none.
        assert inj.wake(1) == 0
        assert inj.cleared_total == first

    def test_max_per_wake_cap(self, env):
        space, pipeline, tlbs, rng = env
        touch_all(space, pipeline)
        inj = FaultInjector(
            pipeline, rng, mode=InjectorMode.STEADY, floor_per_wake=100,
            max_per_wake=5, sampling="uniform",
        )
        assert inj.wake(0) == 5

    def test_rejects_bad_ratio(self, env):
        space, pipeline, tlbs, rng = env
        with pytest.raises(ConfigurationError):
            FaultInjector(pipeline, rng, target_ratio=1.5)

    def test_rejects_bad_sampling(self, env):
        space, pipeline, tlbs, rng = env
        with pytest.raises(ConfigurationError):
            FaultInjector(pipeline, rng, sampling="nope")


class TestClearing:
    def test_cleared_pages_fault_again(self, env):
        space, pipeline, tlbs, rng = env
        touch_all(space, pipeline)
        inj = FaultInjector(
            pipeline, rng, mode=InjectorMode.STEADY, floor_per_wake=16, sampling="uniform"
        )
        inj.wake(0)
        table = space.page_table
        refaulted = 0
        for vpn in space.region("data").vpns():
            if not table.is_present(int(vpn)):
                pipeline.handle_fault(0, 0, int(vpn) * PAGE_SIZE, is_write=False, now_ns=1)
                refaulted += 1
        assert refaulted == 16
        assert pipeline.injected_faults == 16

    def test_tlb_shootdown_on_clear(self, env):
        space, pipeline, tlbs, rng = env
        touch_all(space, pipeline)
        inj = FaultInjector(
            pipeline, rng, tlbs=tlbs, mode=InjectorMode.STEADY,
            floor_per_wake=64, max_per_wake=64, sampling="uniform",
        )
        before = tlbs.shootdowns
        inj.wake(0)
        assert tlbs.shootdowns == before + 1
        # Every cleared page's translation is gone from every TLB.
        table = space.page_table
        for vpn in space.region("data").vpns():
            if not table.is_present(int(vpn)):
                assert all(int(vpn) not in tlbs[p] for p in range(4))

    def test_inject_time_accrues(self, env):
        space, pipeline, tlbs, rng = env
        touch_all(space, pipeline)
        inj = FaultInjector(
            pipeline, rng, mode=InjectorMode.STEADY, floor_per_wake=8,
            clear_cost_ns=100.0, sampling="uniform",
        )
        inj.wake(0)
        assert inj.inject_time_ns == 800.0


class TestAccessedSampling:
    def test_prefers_accessed_pages(self, env):
        space, pipeline, tlbs, rng = env
        touch_all(space, pipeline)
        table = space.page_table
        table.age_accessed()
        hot = space.region("data").vpns()[:8]
        table.mark_accessed_batch(hot)
        inj = FaultInjector(
            pipeline, rng, mode=InjectorMode.STEADY, floor_per_wake=8, sampling="accessed"
        )
        inj.wake(0)
        cleared = set(np.flatnonzero(~table.present_mask(space.region("data").vpns())))
        assert cleared == set(range(8))  # exactly the accessed subset

    def test_ages_accessed_bits_each_wake(self, env):
        space, pipeline, tlbs, rng = env
        touch_all(space, pipeline)
        table = space.page_table
        inj = FaultInjector(
            pipeline, rng, mode=InjectorMode.STEADY, floor_per_wake=4, sampling="accessed"
        )
        inj.wake(0)
        assert table.accessed_present_vpns().size == 0

    def test_falls_back_to_uniform_when_too_few_accessed(self, env):
        space, pipeline, tlbs, rng = env
        touch_all(space, pipeline)
        table = space.page_table
        table.age_accessed()
        table.mark_accessed_batch(space.region("data").vpns()[:2])
        inj = FaultInjector(
            pipeline, rng, mode=InjectorMode.STEADY, floor_per_wake=16, sampling="accessed"
        )
        assert inj.wake(0) == 16


class TestRatioConvergence:
    def test_achieved_ratio_tracks_target_cumulative(self, env):
        space, pipeline, tlbs, rng = env
        touch_all(space, pipeline)
        inj = FaultInjector(
            pipeline, rng, target_ratio=0.10, mode=InjectorMode.CUMULATIVE,
            sampling="uniform",
        )
        table = space.page_table
        for wake in range(30):
            inj.wake(wake)
            for vpn in space.region("data").vpns():
                if not table.is_present(int(vpn)):
                    pipeline.handle_fault(0, 0, int(vpn) * PAGE_SIZE, is_write=False, now_ns=wake)
        assert inj.achieved_ratio() == pytest.approx(0.10, abs=0.02)
