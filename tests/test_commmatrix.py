"""Tests for the communication matrix."""

import numpy as np
import pytest

from repro.core.commmatrix import CommunicationMatrix
from repro.errors import ConfigurationError
from repro.workloads.patterns import chain_pattern, uniform_pattern


class TestBasics:
    def test_add_is_symmetric(self):
        m = CommunicationMatrix(4)
        m.add(0, 2, 3.0)
        assert m.matrix[0, 2] == m.matrix[2, 0] == 3.0

    def test_self_communication_ignored(self):
        m = CommunicationMatrix(4)
        m.add(1, 1, 5.0)
        assert m.total() == 0

    def test_total_counts_pairs_once(self):
        m = CommunicationMatrix(4)
        m.add(0, 1, 2.0)
        m.add(2, 3, 3.0)
        assert m.total() == 5.0

    def test_init_from_data_requires_symmetry(self):
        with pytest.raises(ConfigurationError):
            CommunicationMatrix(2, np.array([[0, 1], [2, 0]]))

    def test_init_zeroes_diagonal(self):
        m = CommunicationMatrix(2, np.array([[7.0, 1.0], [1.0, 7.0]]))
        assert m.matrix[0, 0] == 0

    def test_reset(self):
        m = CommunicationMatrix(3)
        m.add(0, 1)
        m.reset()
        assert m.total() == 0

    def test_copy_is_independent(self):
        m = CommunicationMatrix(3)
        m.add(0, 1)
        c = m.copy()
        c.add(0, 1)
        assert m.matrix[0, 1] == 1 and c.matrix[0, 1] == 2


class TestDecayAndDiff:
    def test_decay(self):
        m = CommunicationMatrix(3)
        m.add(0, 1, 10)
        m.decay(0.5)
        assert m.matrix[0, 1] == 5

    def test_decay_range_checked(self):
        with pytest.raises(ConfigurationError):
            CommunicationMatrix(3).decay(1.5)

    def test_diff_extracts_interval(self):
        m = CommunicationMatrix(3)
        m.add(0, 1, 5)
        snap = m.copy()
        m.add(1, 2, 3)
        d = m.diff(snap)
        assert d.matrix[1, 2] == 3 and d.matrix[0, 1] == 0

    def test_diff_clips_negative(self):
        m = CommunicationMatrix(3)
        snap = m.copy()
        snap.add(0, 1, 5)
        assert m.diff(snap).total() == 0

    def test_diff_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            CommunicationMatrix(3).diff(CommunicationMatrix(4))


class TestPartners:
    def test_partner_is_argmax(self):
        m = CommunicationMatrix(3)
        m.add(0, 1, 1)
        m.add(0, 2, 5)
        assert m.partners()[0] == 2

    def test_no_partner_for_silent_thread(self):
        m = CommunicationMatrix(3)
        m.add(0, 1, 1)
        assert m.partners()[2] == -1

    def test_tie_resolves_to_lowest(self):
        m = CommunicationMatrix(3)
        m.add(1, 0, 2)
        m.add(1, 2, 2)
        assert m.partners()[1] == 0


class TestAnalysis:
    def test_normalized_peak_is_one(self):
        m = CommunicationMatrix(3)
        m.add(0, 1, 8)
        assert m.normalized().max() == 1.0

    def test_normalized_of_empty_is_zero(self):
        assert CommunicationMatrix(3).normalized().max() == 0.0

    def test_correlation_with_self_is_one(self):
        m = CommunicationMatrix(8, chain_pattern(8))
        assert m.correlation(m.copy()) == pytest.approx(1.0)

    def test_correlation_scale_invariant(self):
        a = CommunicationMatrix(8, chain_pattern(8))
        b = CommunicationMatrix(8, chain_pattern(8) * 100)
        assert a.correlation(b) == pytest.approx(1.0)

    def test_chain_more_heterogeneous_than_uniform(self):
        chain = CommunicationMatrix(16, chain_pattern(16))
        uniform = CommunicationMatrix(16, uniform_pattern(16))
        assert chain.heterogeneity() > uniform.heterogeneity()

    def test_empty_matrix_is_homogeneous(self):
        assert CommunicationMatrix(8).heterogeneity() == 0.0


class TestSerialisation:
    def test_csv_roundtrip(self, tmp_path):
        m = CommunicationMatrix(4, chain_pattern(4))
        path = str(tmp_path / "m.csv")
        m.to_csv(path)
        back = CommunicationMatrix.from_csv(path)
        assert np.allclose(m.matrix, back.matrix)

    def test_from_csv_rejects_non_square(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2,3\n4,5,6\n")
        with pytest.raises(ConfigurationError):
            CommunicationMatrix.from_csv(str(path))


class TestMerge:
    def test_merge_accumulates_in_place_and_returns_self(self):
        a = CommunicationMatrix(4, chain_pattern(4))
        b = CommunicationMatrix(4, uniform_pattern(4))
        expected = a.matrix + b.matrix
        out = a.merge(b)
        assert out is a
        assert np.array_equal(a.matrix, expected)

    def test_merge_scale(self):
        a = CommunicationMatrix(4)
        b = CommunicationMatrix(4, uniform_pattern(4))
        a.merge(b, scale=0.5)
        assert np.array_equal(a.matrix, 0.5 * b.matrix)

    def test_merge_is_commutative_for_integer_counts(self):
        rng = np.random.default_rng(7)
        shards = []
        for _ in range(4):
            m = CommunicationMatrix(6)
            for i, j in rng.integers(0, 6, size=(200, 2)):
                if i != j:
                    m.add(int(i), int(j))
            shards.append(m)
        forward = CommunicationMatrix(6)
        for m in shards:
            forward.merge(m)
        backward = CommunicationMatrix(6)
        for m in reversed(shards):
            backward.merge(m)
        # integer event counts are exact in float64: any merge order is
        # bit-identical (the property shard reduction in repro.serve relies on)
        assert np.array_equal(forward.matrix, backward.matrix)
        assert forward.matrix.tobytes() == backward.matrix.tobytes()

    def test_merge_deterministic_across_shardings(self):
        # the same event stream split into 1, 2 or 3 shards merges to the
        # same matrix, bit for bit
        rng = np.random.default_rng(11)
        events = [(int(i), int(j)) for i, j in rng.integers(0, 5, size=(300, 2)) if i != j]
        reference = CommunicationMatrix(5)
        for i, j in events:
            reference.add(i, j)
        for n_shards in (1, 2, 3):
            shards = [CommunicationMatrix(5) for _ in range(n_shards)]
            for index, (i, j) in enumerate(events):
                shards[index % n_shards].add(i, j)
            merged = CommunicationMatrix(5)
            for m in shards:
                merged.merge(m)
            assert merged.matrix.tobytes() == reference.matrix.tobytes()

    def test_merge_keeps_other_unchanged(self):
        a = CommunicationMatrix(3)
        b = CommunicationMatrix(3, uniform_pattern(3))
        before = b.matrix.copy()
        a.merge(b)
        assert np.array_equal(b.matrix, before)

    def test_merge_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            CommunicationMatrix(3).merge(CommunicationMatrix(4))
