"""Tests for the scalable hierarchical mapper and the mapper registry.

Quality gate: on every paper-scale (n <= 32) Fig. 7-suite matrix the
recursive-bisection mapper must land within 10% of the Edmonds engine's
communication cost.  Determinism gate: the same matrix always yields the
same mapping, including under exact ties.
"""

import numpy as np
import pytest

from repro.core.mapping import (
    MAPPER_ALGORITHMS,
    HierarchicalMapper,
    make_mapper,
    mapping_comm_cost,
)
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import MappingError
from repro.graphs.hiermap import ScalableHierarchicalMapper
from repro.machine.topology import CommDistance, build_machine
from repro.workloads.npb import NPB_SPECS, make_npb
from repro.workloads.patterns import (
    chain_pattern,
    distant_pairs_pattern,
    neighbor_pairs_pattern,
    uniform_pattern,
)

_PATTERNS = {
    "neighbor": neighbor_pairs_pattern(32, 100),
    "distant": distant_pairs_pattern(32, 100),
    "chain": chain_pattern(32),
    "uniform": uniform_pattern(32, 10),
}


class TestMakeMapper:
    def test_registry_names(self):
        assert MAPPER_ALGORITHMS == ("edmonds", "hierarchical")

    def test_edmonds_resolves_to_blossom_engine(self, machine):
        assert isinstance(make_mapper("edmonds", machine), HierarchicalMapper)

    def test_hierarchical_resolves_to_scalable_engine(self, machine):
        mapper = make_mapper("hierarchical", machine, stickiness=0.4)
        assert isinstance(mapper, ScalableHierarchicalMapper)
        assert mapper.stickiness == 0.4

    def test_unknown_algorithm_rejected(self, machine):
        with pytest.raises(MappingError, match="unknown mapping algorithm"):
            make_mapper("metis", machine)


class TestQuality:
    @pytest.mark.parametrize("name", sorted(NPB_SPECS))
    def test_within_ten_percent_of_edmonds_on_npb(self, machine, name):
        comm = make_npb(name, 32).ground_truth().matrix
        cost_e = mapping_comm_cost(comm, HierarchicalMapper(machine).map(comm), machine)
        cost_h = mapping_comm_cost(
            comm, ScalableHierarchicalMapper(machine).map(comm), machine
        )
        assert cost_h <= 1.10 * cost_e + 1e-9

    @pytest.mark.parametrize("name", sorted(_PATTERNS))
    def test_within_ten_percent_on_synthetic_patterns(self, machine, name):
        comm = _PATTERNS[name]
        cost_e = mapping_comm_cost(comm, HierarchicalMapper(machine).map(comm), machine)
        cost_h = mapping_comm_cost(
            comm, ScalableHierarchicalMapper(machine).map(comm), machine
        )
        assert cost_h <= 1.10 * cost_e + 1e-9

    def test_pairs_land_on_smt_siblings(self, machine):
        mapping = ScalableHierarchicalMapper(machine).map(neighbor_pairs_pattern(32, 100))
        for k in range(16):
            d = machine.distance(int(mapping[2 * k]), int(mapping[2 * k + 1]))
            assert d is CommDistance.SAME_CORE

    def test_quads_share_socket_for_block_pattern(self, machine):
        comm = np.zeros((32, 32))
        for base in range(0, 32, 4):
            comm[base : base + 4, base : base + 4] = 10
        np.fill_diagonal(comm, 0)
        mapping = ScalableHierarchicalMapper(machine).map(comm)
        for base in range(0, 32, 4):
            sockets = {machine.socket_of(int(mapping[base + k])) for k in range(4)}
            assert len(sockets) == 1

    def test_beats_random_placement(self, machine, rng):
        comm = chain_pattern(32)
        cost = mapping_comm_cost(
            comm, ScalableHierarchicalMapper(machine).map(comm), machine
        )
        random_costs = [
            mapping_comm_cost(comm, rng.permutation(32), machine) for _ in range(10)
        ]
        assert cost < min(random_costs)


class TestContract:
    def test_partial_occupancy_valid(self, machine):
        mapping = ScalableHierarchicalMapper(machine).map(neighbor_pairs_pattern(8, 10))
        assert len(mapping) == 8
        assert len(set(mapping.tolist())) == 8

    def test_odd_thread_count(self, machine):
        mapping = ScalableHierarchicalMapper(machine).map(chain_pattern(7))
        assert len(mapping) == 7 and len(set(mapping.tolist())) == 7

    def test_too_many_threads_rejected(self, machine):
        with pytest.raises(MappingError):
            ScalableHierarchicalMapper(machine).map(np.zeros((33, 33)))

    def test_single_socket_machine(self, single_socket_machine):
        mapping = ScalableHierarchicalMapper(single_socket_machine).map(chain_pattern(4))
        assert sorted(mapping.tolist()) == [0, 1, 2, 3]

    def test_non_power_of_two_cores(self):
        machine = build_machine(2, 3, 2)  # 6 cores, 12 PUs
        comm = neighbor_pairs_pattern(12, 10)
        mapping = ScalableHierarchicalMapper(machine).map(comm)
        assert len(set(mapping.tolist())) == 12

    def test_accepts_matrix_object_and_sparse(self, machine):
        from repro.core.commmatrix import CommunicationMatrix
        from repro.graphs.sparse import SparseCommMatrix

        comm = chain_pattern(32)
        mapper = ScalableHierarchicalMapper(machine)
        base = mapper.map(comm)
        assert np.array_equal(mapper.map(CommunicationMatrix(32, comm)), base)
        assert np.array_equal(mapper.map(SparseCommMatrix(32, comm)), base)

    def test_counts_calls(self, machine):
        mapper = ScalableHierarchicalMapper(machine)
        mapper.map(chain_pattern(32))
        mapper.map(chain_pattern(32))
        assert mapper.calls == 2


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(NPB_SPECS))
    def test_repeated_calls_identical_on_npb(self, machine, name):
        comm = make_npb(name, 32).ground_truth().matrix
        a = ScalableHierarchicalMapper(machine).map(comm)
        b = ScalableHierarchicalMapper(machine).map(comm)
        assert np.array_equal(a, b)

    def test_exact_ties_do_not_flip(self, machine):
        """Uniform matrices are all-ties: the mapping must still be stable."""
        comm = uniform_pattern(32, 7)
        mapper = ScalableHierarchicalMapper(machine)
        first = mapper.map(comm)
        for _ in range(3):
            assert np.array_equal(mapper.map(comm), first)

    def test_noop_when_already_optimal(self, machine):
        mapper = ScalableHierarchicalMapper(machine)
        comm = neighbor_pairs_pattern(32, 100)
        first = mapper.map(comm)
        second = mapper.map(comm, current=first)
        assert np.array_equal(first, second)

    def test_alignment_reduces_moves_under_noise(self, machine, rng):
        """The current placement must anchor placement-equivalent choices.

        Pair structure is fixed by the heavy weights; the socket/core
        assignment above it is nearly all ties, so mapping *with* the
        current placement must migrate fewer threads than mapping blind.
        """
        mapper = ScalableHierarchicalMapper(machine, stickiness=1.0)
        comm = neighbor_pairs_pattern(32, 100)
        current = mapper.map(comm)
        noisy = comm + rng.random((32, 32)) * 0.01
        noisy = (noisy + noisy.T) / 2
        np.fill_diagonal(noisy, 0)
        aligned = mapper.map(noisy, current=current)
        unaligned = mapper.map(noisy)
        assert int((aligned != current).sum()) < int((unaligned != current).sum())
        # Pairs stay intact either way.
        for k in range(16):
            d = machine.distance(int(aligned[2 * k]), int(aligned[2 * k + 1]))
            assert d is CommDistance.SAME_CORE


class TestSelection:
    CFG = EngineConfig(steps=5, batch_size=32)

    def test_spcd_defaults_to_edmonds_at_paper_scale(self):
        sim = Simulator(make_npb("CG", 8), "spcd", seed=1, config=self.CFG)
        assert sim.manager.mapper_algorithm == "edmonds"
        assert isinstance(sim.manager.mapper, HierarchicalMapper)

    def test_spcd_hier_policy_forces_hierarchical(self):
        sim = Simulator(make_npb("CG", 8), "spcd-hier", seed=1, config=self.CFG)
        assert sim.manager.mapper_algorithm == "hierarchical"
        assert isinstance(sim.manager.mapper, ScalableHierarchicalMapper)

    def test_auto_switch_at_threshold(self, caplog):
        settings = RunSettings(map_hierarchical_min_n=8)
        with caplog.at_level("INFO", logger="repro.core.manager"):
            sim = Simulator(make_npb("CG", 8), "spcd", seed=1, config=self.CFG,
                            settings=settings)
        assert sim.manager.mapper_algorithm == "hierarchical"
        assert any("auto-selected the hierarchical mapper" in r.message
                   for r in caplog.records)

    def test_explicit_config_beats_auto_switch(self):
        from repro.core.manager import SpcdConfig

        settings = RunSettings(map_hierarchical_min_n=2)
        sim = Simulator(make_npb("CG", 8), "spcd", seed=1, config=self.CFG,
                        settings=settings,
                        spcd_config=SpcdConfig(mapper_algorithm="edmonds"))
        assert sim.manager.mapper_algorithm == "edmonds"

    def test_spcd_hier_run_matches_spcd_at_paper_scale(self):
        """Same gates, same veto, near-identical behaviour on NPB inputs."""
        cfg = EngineConfig(steps=60, batch_size=64)
        a = Simulator(make_npb("CG", 8), "spcd", seed=3, config=cfg).run()
        b = Simulator(make_npb("CG", 8), "spcd-hier", seed=3, config=cfg).run()
        # Both must detect the same matrix; execution time may differ only
        # through mapping choices, which the quality gate bounds.
        assert np.array_equal(a.detected_matrix.matrix, b.detected_matrix.matrix)
