"""Tests for the parallel, disk-cached grid runner."""

from __future__ import annotations

import os
import pickle
import time
from functools import partial

import pytest

from repro.engine.cache import ResultCache, code_version
from repro.engine.gridrunner import (
    _cell_key,
    _factory_token,
    _resolve_spec,
    run_cell,
    run_grid,
)
from repro.engine.runner import normalized_to, run_replicated
from repro.engine.simulator import EngineConfig
from repro.errors import ConfigurationError
from repro.machine.topology import dual_xeon_e5_2650
from repro.core.manager import SpcdConfig
from repro.workloads.npb import make_npb

CFG = EngineConfig(steps=15, batch_size=128)


# ---------------------------------------------------------------------------
# spec / key plumbing
# ---------------------------------------------------------------------------
def test_resolve_spec_forms():
    name, factory = _resolve_spec("CG")
    assert name == "CG" and factory().name == make_npb("CG").name

    name2, factory2 = _resolve_spec(("mine", partial(make_npb, "FT")))
    assert name2 == "mine" and factory2().name == make_npb("FT").name

    bare = partial(make_npb, "IS")
    name3, _ = _resolve_spec(bare)
    assert "IS" in name3

    with pytest.raises(ConfigurationError):
        _resolve_spec(42)


def test_factory_token_is_stable_and_content_based():
    t1 = _factory_token(partial(make_npb, "CG"))
    t2 = _factory_token(partial(make_npb, "CG"))
    t3 = _factory_token(partial(make_npb, "FT"))
    assert t1 == t2  # no object identity / memory addresses leaking in
    assert t1 != t3
    assert "0x" not in repr(t1)


def test_factory_token_rejects_unstable_identities():
    """Every lambda/closure in a module shares one qualname; a token built
    from it would let two different factories serve each other's cached
    results — so unstable factories must be refused, not silently hashed."""
    with pytest.raises(ConfigurationError):
        _factory_token(lambda: make_npb("CG"))

    def local_factory():
        return make_npb("CG")

    with pytest.raises(ConfigurationError):
        _factory_token(local_factory)  # '<locals>' qualname: same collision
    with pytest.raises(ConfigurationError):
        _factory_token(partial(lambda: make_npb("CG")))  # partial can't launder it


def test_lambda_factories_bypass_cache_instead_of_colliding(tmp_path):
    """Two distinct same-module lambdas must never share a cache entry.

    Before the fix both mapped to ("fn", module, "<lambda>") and the second
    run_cell silently returned the first one's SimulationResult; now the
    cache is bypassed (with a warning) and each factory gets its own run.
    """
    with pytest.warns(UserWarning, match="stable import path"):
        r1, cached1 = run_cell(
            ("wl-a", lambda: make_npb("CG")), "os", 0,
            base_seed=5, config=CFG, cache=tmp_path,
        )
    with pytest.warns(UserWarning, match="stable import path"):
        r2, cached2 = run_cell(
            ("wl-b", lambda: make_npb("FT")), "os", 0,
            base_seed=5, config=CFG, cache=tmp_path,
        )
    assert (cached1, cached2) == (False, False)
    assert r1.workload != r2.workload  # no cross-served result
    # nothing was stored under a colliding key either
    assert list(tmp_path.rglob("*.pkl")) == []


def test_run_grid_with_lambda_factory_warns_and_bypasses_cache(tmp_path):
    with pytest.warns(UserWarning, match="stable import path"):
        grid = run_grid(
            [("wl", lambda: make_npb("CG"))], ["os"], 1,
            base_seed=2, config=CFG, cache=tmp_path,
        )
    assert grid.cache_misses == 1 and grid.cache_hits == 0
    assert list(tmp_path.rglob("*.pkl")) == []
    # named factories keep caching as before, in the same grid call
    with pytest.warns(UserWarning, match="stable import path"):
        mixed = run_grid(
            [("wl", lambda: make_npb("CG")), "FT"], ["os"], 1,
            base_seed=2, config=CFG, cache=tmp_path,
        )
    assert mixed.cache_misses == 2
    assert len(list(tmp_path.rglob("*.pkl"))) == 1  # only FT was stored


def test_cell_key_sensitivity():
    machine = dual_xeon_e5_2650()
    base = dict(
        wl_token=_factory_token(partial(make_npb, "CG")),
        policy="spcd",
        seed=1,
        machine=machine,
        config=EngineConfig(),
        spcd_config=SpcdConfig(),
    )
    k = _cell_key(**base)
    assert k == _cell_key(**base)  # deterministic
    assert k != _cell_key(**{**base, "seed": 2})
    assert k != _cell_key(**{**base, "policy": "os"})
    assert k != _cell_key(**{**base, "config": EngineConfig(steps=7)})


def test_code_version_stable_within_process():
    assert code_version() == code_version()
    assert len(code_version()) == 32


# ---------------------------------------------------------------------------
# result cache
# ---------------------------------------------------------------------------
def test_result_cache_roundtrip_and_corruption(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.load("ab" * 10) is None
    payload = {"anything": "picklable"}
    cache.store("ab" * 10, payload)
    assert cache.load("ab" * 10) == payload
    # a corrupted entry degrades to a miss, not an exception
    cache.path("ab" * 10).write_bytes(b"not a pickle")
    assert cache.load("ab" * 10) is None


def test_result_cache_sweeps_stale_tmp_files(tmp_path):
    """A worker killed between mkstemp and os.replace (the crash window the
    in-process ``except BaseException`` cannot cover) leaves a ``*.tmp``
    orphan; the next cache construction sweeps it."""
    cache = ResultCache(tmp_path)
    cache.store("cd" * 10, {"ok": 1})
    # simulate the crash: an orphaned temp file next to the stored entry
    orphan = cache.path("cd" * 10).parent / "tmpdead123.tmp"
    orphan.write_bytes(b"partial pickle from a dead worker")
    old = time.time() - 7200
    os.utime(orphan, (old, old))
    # a *young* temp file may belong to a live concurrent writer: kept
    young = cache.path("cd" * 10).parent / "tmplive456.tmp"
    young.write_bytes(b"in-flight write")

    swept = ResultCache(tmp_path)
    assert swept.swept_tmp_files == 1
    assert not orphan.exists() and young.exists()
    assert swept.load("cd" * 10) == {"ok": 1}  # real entries untouched
    # an explicit zero age sweeps everything, orphan age notwithstanding
    assert ResultCache(tmp_path, stale_tmp_age_s=0).swept_tmp_files == 1
    assert not young.exists()


def test_result_cache_store_cleans_up_on_inprocess_failure(tmp_path):
    cache = ResultCache(tmp_path)

    class Unpicklable:
        def __reduce__(self):
            raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        cache.store("ef" * 10, Unpicklable())
    assert list(tmp_path.rglob("*.tmp")) == []
    assert cache.load("ef" * 10) is None


# ---------------------------------------------------------------------------
# grid execution
# ---------------------------------------------------------------------------
def test_run_grid_parallel_matches_serial_runner(tmp_path):
    """Pool scheduling must not change results: byte-identical to serial."""
    serial = {
        p: run_replicated(partial(make_npb, "CG"), p, reps=2, base_seed=11, config=CFG)
        for p in ("os", "spcd")
    }
    grid = run_grid(
        ["CG"], ["os", "spcd"], 2,
        base_seed=11, config=CFG, workers=2, cache=tmp_path,
    )
    assert grid.cache_misses == 4 and grid.cache_hits == 0
    for p, want in serial.items():
        got = grid.cell("CG", p)
        assert got.workload == want.workload and got.policy == want.policy
        assert pickle.dumps(got.metrics) == pickle.dumps(want.metrics)

    # normalized_to() works straight off a grid row
    norm = normalized_to(grid.by_workload("CG"), "exec_time_s")
    assert norm["os"] == 1.0


def test_run_grid_second_invocation_fully_cached(tmp_path):
    first = run_grid(["CG"], ["os"], 2, base_seed=3, config=CFG, cache=tmp_path)
    assert (first.cache_hits, first.cache_misses) == (0, 2)
    second = run_grid(["CG"], ["os"], 2, base_seed=3, config=CFG, cache=tmp_path)
    assert (second.cache_hits, second.cache_misses) == (2, 0)
    assert pickle.dumps(second.cell("CG", "os").metrics) == pickle.dumps(
        first.cell("CG", "os").metrics
    )
    # different base_seed is a different experiment -> no false sharing
    third = run_grid(["CG"], ["os"], 2, base_seed=4, config=CFG, cache=tmp_path)
    assert third.cache_misses == 2


def test_run_cell_reports_cache_state(tmp_path):
    r1, cached1 = run_cell("CG", "os", 0, base_seed=5, config=CFG, cache=tmp_path)
    r2, cached2 = run_cell("CG", "os", 0, base_seed=5, config=CFG, cache=tmp_path)
    assert (cached1, cached2) == (False, True)
    assert pickle.dumps(r1.stats) == pickle.dumps(r2.stats)


def test_run_replicated_workers_kwarg_is_equivalent(tmp_path):
    plain = run_replicated(partial(make_npb, "IS"), "spcd", reps=2, base_seed=9, config=CFG)
    pooled = run_replicated(
        partial(make_npb, "IS"), "spcd", reps=2, base_seed=9, config=CFG,
        workers=2, cache=tmp_path,
    )
    assert pickle.dumps(pooled.metrics) == pickle.dumps(plain.metrics)
    assert pooled.workload == plain.workload and pooled.policy == plain.policy


def test_run_grid_validates_inputs():
    with pytest.raises(ConfigurationError):
        run_grid(["CG"], ["os"], 0)
    with pytest.raises(ConfigurationError):
        run_grid([], ["os"], 1)


def test_grid_result_accessors(tmp_path):
    grid = run_grid(["CG"], ["os"], 1, base_seed=2, config=CFG, cache=tmp_path)
    assert grid.workloads == ["CG"]
    assert grid.cell("CG", "os").policy == "os"
    assert set(grid.by_workload("CG")) == {"os"}
