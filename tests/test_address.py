"""Tests for virtual-address decomposition."""

import pytest

from repro.errors import AddressError
from repro.mem.address import (
    MAX_VADDR,
    page_offset,
    radix_indices,
    region_granules,
    vaddr_of_vpn,
    vpn_of,
    vpn_of_radix,
    vpns_of,
)
from repro.units import PAGE_SIZE


class TestVpn:
    def test_first_page(self):
        assert vpn_of(0) == 0
        assert vpn_of(PAGE_SIZE - 1) == 0

    def test_second_page(self):
        assert vpn_of(PAGE_SIZE) == 1

    def test_rejects_out_of_space(self):
        with pytest.raises(AddressError):
            vpn_of(MAX_VADDR + 1)

    def test_offset(self):
        assert page_offset(PAGE_SIZE + 17) == 17

    def test_vaddr_roundtrip(self):
        for vpn in (0, 1, 12345, 1 << 30):
            assert vpn_of(vaddr_of_vpn(vpn, 100)) == vpn
            assert page_offset(vaddr_of_vpn(vpn, 100)) == 100

    def test_vaddr_of_vpn_rejects_bad_offset(self):
        with pytest.raises(AddressError):
            vaddr_of_vpn(1, PAGE_SIZE)


class TestRadix:
    def test_roundtrip(self, rng):
        for _ in range(100):
            vpn = int(rng.integers(0, 1 << 36))
            assert vpn_of_radix(radix_indices(vpn)) == vpn

    def test_low_vpn_uses_pt_index_only(self):
        assert radix_indices(5) == (0, 0, 0, 5)

    def test_level_boundaries(self):
        assert radix_indices(512) == (0, 0, 1, 0)
        assert radix_indices(512 * 512) == (0, 1, 0, 0)

    def test_indices_are_nine_bits(self, rng):
        for _ in range(50):
            vpn = int(rng.integers(0, 1 << 36))
            assert all(0 <= i < 512 for i in radix_indices(vpn))

    def test_vpn_of_radix_rejects_wide_index(self):
        with pytest.raises(AddressError):
            vpn_of_radix((512, 0, 0, 0))


class TestVectorised:
    def test_vpns_of_matches_scalar(self, rng):
        addrs = rng.integers(0, 1 << 40, 100)
        expected = [vpn_of(int(a)) for a in addrs]
        assert vpns_of(addrs).tolist() == expected


class TestRegionGranules:
    def test_page_granularity_matches_vpn(self):
        assert region_granules(PAGE_SIZE * 3 + 5, PAGE_SIZE) == 3

    def test_finer_granularity(self):
        assert region_granules(300, 256) == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(AddressError):
            region_granules(0, 1000)
