"""Tests for trace capture and the oracle analyser."""

import numpy as np

from repro.core.mapping import mapping_comm_cost
from repro.machine.topology import CommDistance
from repro.mem.addresspace import AddressSpace
from repro.oracle.analyzer import (
    matrix_from_ground_truth,
    matrix_from_trace,
    oracle_mapping,
)
from repro.units import PAGE_SIZE
from repro.workloads.npb import make_npb
from repro.workloads.trace import TraceCollector


class TestTraceCollector:
    def test_records_batches(self):
        tc = TraceCollector()
        tc.record(0, 10, np.array([100, 200]), np.array([True, False]))
        assert tc.total_accesses == 2
        assert len(list(tc.replay())) == 1

    def test_records_are_copies(self):
        tc = TraceCollector()
        arr = np.array([100])
        tc.record(0, 0, arr, np.array([False]))
        arr[0] = 999
        assert tc.records[0].vaddrs[0] == 100

    def test_max_records_cap(self):
        tc = TraceCollector(max_records=1)
        tc.record(0, 0, np.array([1]), np.array([False]))
        tc.record(0, 0, np.array([2]), np.array([False]))
        assert len(tc.records) == 1

    def test_page_access_counts(self):
        tc = TraceCollector()
        tc.record(0, 0, np.array([0, 64, PAGE_SIZE]), np.zeros(3, bool))
        tc.record(1, 0, np.array([128]), np.zeros(1, bool))
        counts = tc.page_access_counts(2)
        assert counts[0].tolist() == [2, 1]
        assert counts[1].tolist() == [1, 0]

    def test_clear(self):
        tc = TraceCollector()
        tc.record(0, 0, np.array([1]), np.array([False]))
        tc.clear()
        assert tc.total_accesses == 0


class TestMatrixFromTrace:
    def test_shared_page_counts_min(self):
        tc = TraceCollector()
        tc.record(0, 0, np.full(5, 0), np.zeros(5, bool))
        tc.record(1, 0, np.full(3, 0), np.zeros(3, bool))
        m = matrix_from_trace(tc, 2)
        assert m.matrix[0, 1] == 3  # min(5, 3)

    def test_private_pages_ignored(self):
        tc = TraceCollector()
        tc.record(0, 0, np.array([0]), np.zeros(1, bool))
        tc.record(1, 0, np.array([PAGE_SIZE]), np.zeros(1, bool))
        assert matrix_from_trace(tc, 2).total() == 0

    def test_trace_matrix_matches_workload_pattern(self, rng):
        wl = make_npb("SP")
        space = AddressSpace(1 << 17)
        wl.setup(space)
        tc = TraceCollector()
        for t in range(wl.n_threads):
            batch = wl.generate(t, 3000, 0, rng)
            tc.record(t, 0, batch.vaddrs, batch.is_write)
        detected = matrix_from_trace(tc, wl.n_threads)
        gt = wl.ground_truth()
        assert detected.correlation(gt) > 0.7


class TestOracleMapping:
    def test_uses_ground_truth_by_default(self, machine):
        wl = make_npb("SP")
        mapping = oracle_mapping(wl, machine)
        # chain neighbours end up adjacent in the hierarchy
        for i in range(0, 31, 2):
            d = machine.distance(int(mapping[i]), int(mapping[i + 1]))
            assert d in (CommDistance.SAME_CORE, CommDistance.SAME_SOCKET)

    def test_oracle_beats_identity(self, machine):
        wl = make_npb("SP")
        gt = matrix_from_ground_truth(wl)
        mapping = oracle_mapping(wl, machine)
        identity = np.arange(32)
        assert mapping_comm_cost(gt.matrix, mapping, machine) <= mapping_comm_cost(
            gt.matrix, identity, machine
        )

    def test_oracle_with_trace(self, machine, rng):
        wl = make_npb("SP")
        space = AddressSpace(1 << 17)
        wl.setup(space)
        tc = TraceCollector()
        for t in range(wl.n_threads):
            batch = wl.generate(t, 2000, 0, rng)
            tc.record(t, 0, batch.vaddrs, batch.is_write)
        mapping = oracle_mapping(wl, machine, trace=tc)
        assert len(set(mapping.tolist())) == 32


class TestMatrixFromTraceParity:
    @staticmethod
    def _reference(tc, n_threads):
        """The pre-vectorisation per-pair loop, kept as the parity oracle."""
        from repro.core.commmatrix import CommunicationMatrix

        m = CommunicationMatrix(n_threads)
        for _page, counts in tc.page_access_counts(n_threads).items():
            tids = np.flatnonzero(counts)
            for a in range(tids.size):
                for b in range(a + 1, tids.size):
                    i, j = int(tids[a]), int(tids[b])
                    m.add(i, j, float(min(counts[i], counts[j])))
        return m

    def test_vectorised_matches_reference_bit_for_bit(self, rng):
        tc = TraceCollector()
        n_threads = 6
        for t in range(n_threads):
            for _ in range(3):
                vaddrs = rng.integers(0, 40, size=500) * PAGE_SIZE
                tc.record(t, 0, vaddrs.astype(np.int64), np.zeros(500, bool))
        fast = matrix_from_trace(tc, n_threads)
        slow = self._reference(tc, n_threads)
        assert fast.matrix.tobytes() == slow.matrix.tobytes()

    def test_single_thread_trace_is_empty(self):
        tc = TraceCollector()
        tc.record(0, 0, np.zeros(10, dtype=np.int64), np.zeros(10, bool))
        assert matrix_from_trace(tc, 4).total() == 0.0

    def test_diagonal_stays_zero(self, rng):
        tc = TraceCollector()
        for t in range(4):
            tc.record(t, 0, rng.integers(0, 8, size=100) * PAGE_SIZE, np.zeros(100, bool))
        m = matrix_from_trace(tc, 4)
        assert np.all(np.diag(m.matrix) == 0.0)
