"""Differential tests: batched fault/SPCD fast path vs the reference engine.

The vectorised fault pipeline (``FaultPipeline.handle_fault_batch``) and the
array-backed detector engine (:class:`ArrayShareTable`) must be *bit
identical* to the per-fault reference path selected by ``REPRO_SLOW_SPCD=1``
— same page-table state, same frame placement, same TLB contents, same
communication matrices and same counters.  These tests pin that equivalence
at four levels: the bulk primitives, randomised fault streams through both
complete stacks, intra-batch collision/duplicate handling, and full
simulations of the producer/consumer phase-shift workload and a small NPB
kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashtable import ArrayShareTable, ShareTable, hash_64, hash_64_batch
from repro.core.spcd import SpcdDetector
from repro.engine.runner import run_single
from repro.engine.simulator import EngineConfig
from repro.errors import ConfigurationError
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.mem.tlb import Tlb, TlbArray
from repro.units import PAGE_SHIFT, PAGE_SIZE
from repro.workloads.npb import make_npb
from repro.workloads.producer_consumer import ProducerConsumerWorkload


# -- bulk primitives ----------------------------------------------------------


def test_hash_64_batch_matches_scalar():
    values = np.array([0, 1, 17, 2**40, 2**63 - 1], dtype=np.int64)
    for bits in (8, 18, 64):
        batch = hash_64_batch(values, bits)
        for v, h in zip(values.tolist(), batch.tolist()):
            assert h == hash_64(v, bits)


def test_allocate_batch_matches_scalar_with_free_list_and_spill():
    """Bulk allocation replays allocate() exactly: LIFO free list, then bump,
    spilling to the nearest node when one runs out."""
    a = FrameAllocator(n_nodes=4, frames_per_node=8)
    b = FrameAllocator(n_nodes=4, frames_per_node=8)
    for alloc in (a, b):
        taken = [alloc.allocate(1) for _ in range(5)]
        for f in (taken[3], taken[0], taken[4]):
            alloc.free(f)
    # 3 frames on node 1's free list, 3 by bump, then spill to neighbours
    want = 14
    got_a = [a.allocate(1) for _ in range(want)]
    got_b = b.allocate_batch(1, want).tolist()
    assert got_a == got_b
    assert [a.node_of_frame(f) for f in got_a] == b.nodes_of_frames(
        np.asarray(got_b)
    ).tolist()


def test_tlb_insert_batch_matches_loop():
    vpns = np.arange(100, dtype=np.int64)
    frames = vpns * 7
    loop, batch = Tlb(capacity=16), Tlb(capacity=16)
    for v, f in zip(vpns.tolist(), frames.tolist()):
        loop.insert(v, f)
    batch.insert_batch(vpns, frames, assume_unique=True)  # shortcut path
    assert list(loop._entries.items()) == list(batch._entries.items())

    small_v, small_f = vpns[:5], frames[:5]
    loop2, batch2 = Tlb(capacity=16), Tlb(capacity=16)
    for v, f in zip(small_v.tolist(), small_f.tolist()):
        loop2.insert(v, f)
    batch2.insert_batch(small_v, small_f, assume_unique=True)  # loop path
    assert list(loop2._entries.items()) == list(batch2._entries.items())


def test_bulk_shootdown_matches_scalar_invalidate():
    bulk, scalar = TlbArray(3, capacity=8), TlbArray(3, capacity=8)
    for tlbs in (bulk, scalar):
        for pu in range(3):
            for vpn in range(pu, pu + 6):
                tlbs[pu].insert(vpn, vpn * 10)
    targets = np.array([2, 3, 100], dtype=np.int64)
    removed = bulk.shootdown(targets)
    expected = sum(
        scalar[pu].invalidate(int(v)) for pu in range(3) for v in targets
    )
    assert removed == expected
    for pu in range(3):
        assert sorted(bulk[pu]._entries) == sorted(scalar[pu]._entries)
        assert bulk[pu].invalidations == scalar[pu].invalidations


# -- stack-level randomized fault streams -------------------------------------


def _build_stack(engine, *, n_threads=8, n_pages=192, table_size=251, granularity=PAGE_SIZE):
    space = AddressSpace(1 << 12)
    region = space.mmap("data", n_pages * PAGE_SIZE)
    frames = FrameAllocator(n_nodes=4, frames_per_node=n_pages)
    tlbs = TlbArray(n_threads, capacity=16)
    pipeline = FaultPipeline(space, frames, tlbs, node_of_pu=lambda pu: pu % 4)
    detector = SpcdDetector(
        n_threads,
        table_size=table_size,
        granularity=granularity,
        window_ns=5_000,
        pipeline=pipeline,
        engine=engine,
    )
    return space, region, pipeline, detector, tlbs


def _drive_differential(seed, table_size, granularity=PAGE_SIZE, steps=300, max_batch=24):
    """Run one random fault stream through both stacks and compare everything."""
    rng = np.random.default_rng(seed)
    fast = _build_stack("array", table_size=table_size, granularity=granularity)
    slow = _build_stack("dict", table_size=table_size, granularity=granularity)
    f_space, f_region, f_pipe, f_det, f_tlbs = fast
    s_space, s_region, s_pipe, s_det, s_tlbs = slow
    vpn_lo = int(f_region.vpns()[0])
    vpn_hi = int(f_region.vpns()[-1])

    for step in range(steps):
        tid = int(rng.integers(0, 8))
        m = int(rng.integers(1, max_batch))
        vpns = rng.integers(vpn_lo, vpn_hi + 1, size=m)
        vaddrs = (vpns << PAGE_SHIFT) + rng.integers(0, PAGE_SIZE, size=m)
        writes = rng.random(m) < 0.4
        now = step * 700
        mask = f_pipe.faulting_mask(vpns)
        if not mask.any():
            present = f_space.page_table.present_vpns()
            chosen = rng.choice(present, size=min(30, present.size), replace=False)
            for space, tlbs in ((f_space, f_tlbs), (s_space, s_tlbs)):
                space.page_table.clear_present(chosen)
                tlbs.shootdown(chosen)
            continue
        va, wr = vaddrs[mask], writes[mask]
        # fast stack: one batched call
        f_pipe.handle_fault_batch(tid, tid, va, wr, now_ns=now)
        # slow stack: reference per-fault loop (ascending unique VPNs)
        _, first = np.unique(va >> PAGE_SHIFT, return_index=True)
        for k in first:
            s_pipe.handle_fault(tid, tid, int(va[k]), is_write=bool(wr[k]), now_ns=now)

    # detector: matrix, stats, table counters, live entries
    assert np.array_equal(f_det.matrix.matrix, s_det.matrix.matrix)
    assert f_det.stats == s_det.stats
    assert f_det.table.collisions == s_det.table.collisions
    assert f_det.table.inserts == s_det.table.inserts
    assert len(f_det.table) == len(s_det.table)
    assert f_det.shared_region_count() == s_det.shared_region_count()
    f_entries = {e.region: e.last_access for e in f_det.table.entries()}
    s_entries = {e.region: e.last_access for e in s_det.table.entries()}
    assert f_entries == s_entries
    # pipeline counters and accounting
    assert f_pipe.first_touch_faults == s_pipe.first_touch_faults
    assert f_pipe.injected_faults == s_pipe.injected_faults
    assert f_pipe.fault_time_ns == s_pipe.fault_time_ns
    assert f_pipe.hook_time_ns == s_pipe.hook_time_ns
    # page table state, frame placement, walk accounting
    ft, st = f_space.page_table, s_space.page_table
    assert np.array_equal(ft._frame, st._frame)
    assert np.array_equal(ft._home_node, st._home_node)
    assert np.array_equal(ft._dirty, st._dirty)
    assert ft.walk_count == st.walk_count
    # TLBs: exact LRU order per PU
    for f_tlb, s_tlb in zip(f_tlbs.tlbs, s_tlbs.tlbs):
        assert list(f_tlb._entries.items()) == list(s_tlb._entries.items())


@pytest.mark.parametrize("table_size", [7, 251, 4096])
def test_random_fault_streams_are_bit_identical(table_size):
    """Random streams across table sizes; size 7 forces constant collisions."""
    _drive_differential(seed=100 + table_size, table_size=table_size)


def test_coarse_granularity_duplicate_regions():
    """Granularity above the page size maps several batch VPNs onto one
    region — the intra-batch slot-conflict replay must stay bit-identical."""
    _drive_differential(
        seed=9, table_size=61, granularity=4 * PAGE_SIZE, steps=200, max_batch=40
    )


def test_one_fault_batches_match_scalar_entry_point():
    """m=1 batches (the scalar cutover's smallest case) equal handle_fault."""
    _drive_differential(seed=5, table_size=251, steps=150, max_batch=2)


# -- engine selection ---------------------------------------------------------


def test_engine_selection_follows_env(monkeypatch):
    monkeypatch.delenv("REPRO_SLOW_SPCD", raising=False)
    assert isinstance(SpcdDetector(4).table, ArrayShareTable)
    monkeypatch.setenv("REPRO_SLOW_SPCD", "1")
    assert isinstance(SpcdDetector(4).table, ShareTable)
    monkeypatch.delenv("REPRO_SLOW_SPCD", raising=False)
    assert isinstance(SpcdDetector(4, engine="dict").table, ShareTable)
    with pytest.raises(ConfigurationError):
        SpcdDetector(4, engine="bogus")


# -- full simulations ---------------------------------------------------------


@pytest.mark.parametrize(
    "name,factory",
    [
        ("prodcons", lambda: ProducerConsumerWorkload(n_threads=32)),
        ("cg", lambda: make_npb("CG")),
    ],
)
def test_full_simulation_parity(name, factory, monkeypatch):
    """End-to-end: fast fault/SPCD path vs ``REPRO_SLOW_SPCD=1`` reference."""
    cfg = EngineConfig(steps=30, batch_size=128)
    monkeypatch.delenv("REPRO_SLOW_SPCD", raising=False)
    fast = run_single(factory, "spcd", seed=7, config=cfg)
    monkeypatch.setenv("REPRO_SLOW_SPCD", "1")
    slow = run_single(factory, "spcd", seed=7, config=cfg)

    assert np.array_equal(fast.detected_matrix.matrix, slow.detected_matrix.matrix)
    assert fast.perf.faults == slow.perf.faults
    assert fast.first_touch_faults == slow.first_touch_faults
    assert fast.injected_faults == slow.injected_faults
    assert fast.migrations == slow.migrations
    for metric in ("exec_time_s", "l2_mpki", "l3_mpki", "c2c_transactions"):
        assert fast.metric(metric) == slow.metric(metric)
    # The subsystem timers are disjoint sub-intervals of the run's wall
    # clock; a negative raw residual would mean two timers double-count.
    for result in (fast, slow):
        assert result.perf.other_s >= 0.0
        assert result.perf.tracked_s <= result.perf.wall_s
