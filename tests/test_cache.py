"""Tests for the set-associative cache."""


from repro.cachesim.cache import SetAssocCache
from repro.machine.cache_params import CacheParams
from repro.units import KIB


def make_cache(size_kib=1, ways=2, line=64):
    return SetAssocCache(CacheParams("t", size_kib * KIB, ways, line))


class TestLookupInsert:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.lookup(5)
        c.insert(5)
        assert c.lookup(5)
        assert c.hits == 1 and c.misses == 1

    def test_contains_does_not_count(self):
        c = make_cache()
        c.insert(5)
        c.contains(5)
        assert c.accesses == 0

    def test_set_index_uses_low_bits(self):
        c = make_cache()  # 8 sets
        assert c.set_index(8) == c.set_index(16)
        assert c.set_index(1) != c.set_index(2)

    def test_miss_rate(self):
        c = make_cache()
        c.lookup(1)
        c.insert(1)
        c.lookup(1)
        assert c.miss_rate() == 0.5


class TestEviction:
    def test_lru_victim_in_set(self):
        c = make_cache(ways=2)  # 8 sets
        n = c.num_sets
        c.insert(0)        # set 0
        c.insert(n)        # set 0
        c.lookup(0)        # refresh 0
        victim = c.insert(2 * n)  # set 0, evicts n
        assert victim == (n, False)
        assert c.contains(0) and not c.contains(n)

    def test_no_cross_set_interference(self):
        c = make_cache(ways=1)
        c.insert(0)
        assert c.insert(1) is None  # different set
        assert c.contains(0)

    def test_eviction_carries_dirty_flag(self):
        c = make_cache(ways=1)
        c.insert(0, dirty=True)
        victim = c.insert(c.num_sets)
        assert victim == (0, True)

    def test_reinsert_refreshes_lru_and_or_dirty(self):
        c = make_cache(ways=2)
        n = c.num_sets
        c.insert(0)
        c.insert(n)
        c.insert(0, dirty=True)  # refresh + dirty
        victim = c.insert(2 * n)
        assert victim[0] == n
        assert c.is_dirty(0)

    def test_eviction_counter(self):
        c = make_cache(ways=1)
        c.insert(0)
        c.insert(c.num_sets)
        assert c.evictions == 1


class TestDirtyAndRemove:
    def test_mark_dirty(self):
        c = make_cache()
        c.insert(3)
        assert not c.is_dirty(3)
        c.mark_dirty(3)
        assert c.is_dirty(3)

    def test_mark_dirty_absent_is_noop(self):
        c = make_cache()
        c.mark_dirty(3)
        assert not c.contains(3)

    def test_remove_returns_dirty(self):
        c = make_cache()
        c.insert(3, dirty=True)
        assert c.remove(3) is True
        assert c.remove(3) is False

    def test_flush(self):
        c = make_cache()
        c.insert(1)
        c.insert(2)
        assert c.flush() == 2
        assert len(c) == 0


class TestCapacity:
    def test_never_exceeds_capacity(self, rng):
        c = make_cache(size_kib=1, ways=2)
        for _ in range(1000):
            c.insert(int(rng.integers(0, 10_000)))
        assert len(c) <= c.num_sets * c.ways

    def test_resident_lines_lists_everything(self):
        c = make_cache()
        for line in (1, 2, 3):
            c.insert(line)
        assert sorted(c.resident_lines()) == [1, 2, 3]
