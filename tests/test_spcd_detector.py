"""Tests for the SPCD detection hook."""

import pytest

from repro.core.spcd import SpcdDetector
from repro.errors import ConfigurationError
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.units import MSEC, PAGE_SIZE


@pytest.fixture
def setup():
    space = AddressSpace(256)
    space.mmap("data", 32 * PAGE_SIZE)
    pipeline = FaultPipeline(space, FrameAllocator(2, 1000), node_of_pu=lambda pu: 0)
    detector = SpcdDetector(4, window_ns=100 * MSEC, pipeline=pipeline)
    return space, pipeline, detector


def fault(pipeline, space, tid, page, now, write=False):
    addr = space.region("data").base + page * PAGE_SIZE
    table = space.page_table
    vpn = addr // PAGE_SIZE
    if table.is_present(vpn):
        table.clear_present(vpn)
    pipeline.handle_fault(tid, tid, addr, is_write=write, now_ns=now)


class TestDetection:
    def test_single_thread_no_communication(self, setup):
        space, pipeline, det = setup
        fault(pipeline, space, 0, 0, 0)
        fault(pipeline, space, 0, 0, 10)
        assert det.matrix.total() == 0
        assert det.stats.comm_events == 0

    def test_two_threads_one_page_is_communication(self, setup):
        """The paper's Figure 3 timeline."""
        space, pipeline, det = setup
        fault(pipeline, space, 0, 0, 0)
        fault(pipeline, space, 1, 0, 10)
        assert det.matrix.matrix[0, 1] == 1
        assert det.stats.comm_events == 1

    def test_third_thread_communicates_with_both(self, setup):
        space, pipeline, det = setup
        fault(pipeline, space, 0, 0, 0)
        fault(pipeline, space, 1, 0, 10)
        fault(pipeline, space, 2, 0, 20)
        assert det.matrix.matrix[2, 0] == 1
        assert det.matrix.matrix[2, 1] == 1

    def test_distinct_pages_do_not_communicate(self, setup):
        space, pipeline, det = setup
        fault(pipeline, space, 0, 0, 0)
        fault(pipeline, space, 1, 1, 10)
        assert det.matrix.total() == 0

    def test_shared_region_count(self, setup):
        space, pipeline, det = setup
        fault(pipeline, space, 0, 0, 0)
        fault(pipeline, space, 1, 0, 1)
        fault(pipeline, space, 0, 1, 2)
        assert det.shared_region_count() == 1


class TestTemporalWindow:
    def test_old_access_windowed_out(self, setup):
        """Sec. III-C2: accesses far apart are temporal false communication."""
        space, pipeline, det = setup
        fault(pipeline, space, 0, 0, 0)
        fault(pipeline, space, 1, 0, 200 * MSEC)  # window is 100 ms
        assert det.matrix.total() == 0
        assert det.stats.windowed_out == 1

    def test_boundary_inclusive(self, setup):
        space, pipeline, det = setup
        fault(pipeline, space, 0, 0, 0)
        fault(pipeline, space, 1, 0, 100 * MSEC)
        assert det.matrix.matrix[0, 1] == 1

    def test_timestamp_refresh_extends_window(self, setup):
        space, pipeline, det = setup
        fault(pipeline, space, 0, 0, 0)
        fault(pipeline, space, 0, 0, 90 * MSEC)  # refreshes thread 0's stamp
        fault(pipeline, space, 1, 0, 150 * MSEC)
        assert det.matrix.matrix[0, 1] == 1


class TestGranularity:
    def test_sub_page_granularity_separates_halves(self):
        """Sec. III-C1: detection granularity is decoupled from page size."""
        space = AddressSpace(64)
        space.mmap("d", 2 * PAGE_SIZE)
        pipeline = FaultPipeline(space, FrameAllocator(1, 100), node_of_pu=lambda pu: 0)
        det = SpcdDetector(2, granularity=PAGE_SIZE // 2, pipeline=pipeline)
        base = space.region("d").base
        pipeline.handle_fault(0, 0, base, is_write=False, now_ns=0)
        space.page_table.clear_present(base // PAGE_SIZE)
        # Second thread touches the *other half* of the same page.
        pipeline.handle_fault(1, 1, base + PAGE_SIZE // 2, is_write=False, now_ns=1)
        assert det.matrix.total() == 0  # different sub-page regions

    def test_coarse_granularity_merges_pages(self):
        space = AddressSpace(64)
        space.mmap("d", 4 * PAGE_SIZE)
        pipeline = FaultPipeline(space, FrameAllocator(1, 100), node_of_pu=lambda pu: 0)
        det = SpcdDetector(2, granularity=4 * PAGE_SIZE, pipeline=pipeline)
        base = space.region("d").base  # vpn 1: pages 1 and 2 share region 0
        pipeline.handle_fault(0, 0, base, is_write=False, now_ns=0)
        pipeline.handle_fault(1, 1, base + PAGE_SIZE, is_write=False, now_ns=1)
        assert det.matrix.matrix[0, 1] == 1  # adjacent pages, same region

    def test_rejects_bad_granularity(self):
        with pytest.raises(ConfigurationError):
            SpcdDetector(2, granularity=0)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            SpcdDetector(2, window_ns=0)


class TestAccounting:
    def test_hook_time_charged(self, setup):
        space, pipeline, det = setup
        fault(pipeline, space, 0, 0, 0)
        assert pipeline.hook_time_ns == det.detect_cost_ns

    def test_detach_stops_detection(self, setup):
        space, pipeline, det = setup
        det.detach()
        fault(pipeline, space, 0, 0, 0)
        assert det.stats.faults_seen == 0

    def test_snapshot_is_copy(self, setup):
        space, pipeline, det = setup
        fault(pipeline, space, 0, 0, 0)
        fault(pipeline, space, 1, 0, 1)
        snap = det.snapshot_matrix()
        fault(pipeline, space, 0, 0, 2)
        assert snap.matrix[0, 1] == 1
        assert det.matrix.matrix[0, 1] == 2
