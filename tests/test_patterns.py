"""Tests for ground-truth pattern constructors."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.patterns import (
    chain_pattern,
    distant_pairs_pattern,
    mixed_pattern,
    neighbor_pairs_pattern,
    none_pattern,
    uniform_pattern,
)


@pytest.mark.parametrize(
    "builder",
    [chain_pattern, neighbor_pairs_pattern, distant_pairs_pattern, uniform_pattern, none_pattern],
)
class TestCommonProperties:
    def test_symmetric(self, builder):
        m = builder(8)
        assert np.allclose(m, m.T)

    def test_zero_diagonal(self, builder):
        assert np.all(np.diag(builder(8)) == 0)

    def test_non_negative(self, builder):
        assert (builder(8) >= 0).all()

    def test_rejects_tiny(self, builder):
        with pytest.raises(WorkloadError):
            builder(1)


class TestSpecificShapes:
    def test_neighbor_pairs_disjoint(self):
        m = neighbor_pairs_pattern(8)
        assert m[0, 1] == 1 and m[1, 2] == 0

    def test_distant_pairs_half_offset(self):
        m = distant_pairs_pattern(8)
        assert m[0, 4] == 1 and m[0, 1] == 0

    def test_distant_rejects_odd(self):
        with pytest.raises(WorkloadError):
            distant_pairs_pattern(7)

    def test_chain_has_falloff(self):
        m = chain_pattern(8, weight=4.0, falloff=0.25)
        assert m[0, 1] == 4.0 and m[0, 2] == 1.0 and m[0, 3] == 0

    def test_uniform_all_equal(self):
        m = uniform_pattern(6, 2.0)
        off = m[np.triu_indices(6, 1)]
        assert (off == 2.0).all()

    def test_mixed_is_sum(self):
        assert np.allclose(mixed_pattern(8, 1.0, 0.1), chain_pattern(8) + uniform_pattern(8, 0.1))

    def test_none_is_empty(self):
        assert none_pattern(8).sum() == 0
