"""Public API surface tests: exports resolve, docstrings exist, the curated
surface stays stable, and the deprecated import paths still work (warning)."""

import importlib
import inspect
import warnings

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.machine",
    "repro.mem",
    "repro.cachesim",
    "repro.kernelsim",
    "repro.core",
    "repro.workloads",
    "repro.engine",
    "repro.oracle",
    "repro.analysis",
    "repro.obs",
    "repro.placement",
    "repro.serve",
    "repro.graphs",
]


@pytest.mark.parametrize("name", PACKAGES)
class TestPackages:
    def test_importable(self, name):
        importlib.import_module(name)

    def test_has_docstring(self, name):
        assert importlib.import_module(name).__doc__

    def test_all_exports_resolve(self, name):
        mod = importlib.import_module(name)
        for symbol in getattr(mod, "__all__", []):
            assert hasattr(mod, symbol), f"{name}.{symbol} missing"


#: the curated top-level surface — additions are deliberate, removals break
#: users; update this snapshot consciously in the same PR as the API change
TOP_LEVEL_API = {
    "CellFailure",
    "CommunicationFilter",
    "CommunicationMatrix",
    "CsrGraph",
    "EngineConfig",
    "GridResult",
    "HierarchicalMapper",
    "JsonlRecorder",
    "Machine",
    "PartitionPageRankWorkload",
    "PlacementDecision",
    "PlacementPolicy",
    "Policy",
    "ProducerConsumerWorkload",
    "ResultCache",
    "RunSettings",
    "ScalableHierarchicalMapper",
    "SimulationResult",
    "Simulator",
    "SparseCommMatrix",
    "SpcdConfig",
    "SpcdDetector",
    "SpcdManager",
    "SpmvHaloWorkload",
    "SyntheticNpbWorkload",
    "TraceRecorder",
    "build_machine",
    "canonical_policies",
    "dual_xeon_e5_2650",
    "make_mapper",
    "make_npb",
    "make_pagerank",
    "make_spmv",
    "max_weight_perfect_matching",
    "resolve_policy",
    "run_cell",
    "run_grid",
    "run_replicated",
    "run_single",
    "__version__",
}

ENGINE_API = {
    "CellFailure",
    "EnergyModel",
    "EnergyParams",
    "EngineConfig",
    "GridResult",
    "MetricStats",
    "Policy",
    "ResultCache",
    "RunSettings",
    "SimulationResult",
    "Simulator",
    "TimeModel",
    "TimeParams",
    "code_version",
    "run_cell",
    "run_grid",
    "run_replicated",
    "run_single",
    "summarize",
}


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.4.0"

    def test_api_surface_snapshot(self):
        assert set(repro.__all__) == TOP_LEVEL_API
        assert set(importlib.import_module("repro.engine").__all__) == ENGINE_API

    def test_quickstart_symbols_present(self):
        for symbol in ("Simulator", "make_npb", "EngineConfig", "SpcdConfig",
                       "dual_xeon_e5_2650", "CommunicationMatrix"):
            assert symbol in repro.__all__

    def test_public_classes_documented(self):
        undocumented = []
        for symbol in repro.__all__:
            obj = getattr(repro, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(symbol)
        assert not undocumented

    def test_public_methods_documented(self):
        """Every public method of the headline classes has a docstring."""
        from repro import CommunicationMatrix, HierarchicalMapper, Simulator
        from repro.core.spcd import SpcdDetector

        undocumented = []
        for cls in (Simulator, CommunicationMatrix, HierarchicalMapper, SpcdDetector):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                if not inspect.getdoc(member):
                    undocumented.append(f"{cls.__name__}.{name}")
        assert not undocumented


class TestDeprecationShims:
    """The pre-1.1 import paths and kwargs keep working, with a warning."""

    def test_gridrunner_module_shims_warn_but_resolve(self):
        from repro.engine import cache, gridrunner, settings

        with pytest.warns(DeprecationWarning, match="moved to repro.engine.cache"):
            assert gridrunner.ResultCache is cache.ResultCache
        with pytest.warns(DeprecationWarning, match="moved to repro.engine.cache"):
            assert gridrunner.code_version is cache.code_version
        with pytest.warns(DeprecationWarning, match="moved to"):
            workers = gridrunner.default_workers()
        assert workers == settings.RunSettings.from_env().workers

    def test_gridrunner_unknown_attribute_still_raises(self):
        from repro.engine import gridrunner

        with pytest.raises(AttributeError):
            gridrunner.no_such_symbol

    def test_canonical_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.engine.cache import ResultCache, code_version  # noqa: F401
            from repro.engine.gridrunner import run_cell, run_grid  # noqa: F401

    def test_cache_dir_kwarg_warns_and_works(self, tmp_path):
        from functools import partial

        from repro.engine.gridrunner import run_cell, run_grid
        from repro.engine.runner import run_replicated
        from repro.engine.simulator import EngineConfig
        from repro.workloads.npb import make_npb

        cfg = EngineConfig(steps=5, batch_size=32)
        with pytest.warns(DeprecationWarning, match="cache_dir.*deprecated"):
            run_cell("CG", "os", 0, base_seed=3, config=cfg, cache_dir=tmp_path)
        with pytest.warns(DeprecationWarning, match="cache_dir.*deprecated"):
            grid = run_grid(["CG"], ["os"], 1, base_seed=3, config=cfg,
                            cache_dir=tmp_path)
        assert grid.cache_hits == 1  # the deprecated spelling hit the same cache
        with pytest.warns(DeprecationWarning, match="cache_dir.*deprecated"):
            run_replicated(partial(make_npb, "CG"), "os", reps=1, base_seed=3,
                           config=cfg, cache_dir=tmp_path)


class TestMesiState:
    def test_states(self):
        from repro.cachesim import MesiState

        assert {s.value for s in MesiState} == {"M", "E", "S", "I"}

    def test_line_helpers(self):
        from repro.cachesim.line import line_of, lines_of

        import numpy as np

        assert line_of(128) == 2
        assert lines_of(np.array([0, 64, 65])).tolist() == [0, 1, 1]
