"""Public API surface tests: exports resolve, docstrings exist."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.machine",
    "repro.mem",
    "repro.cachesim",
    "repro.kernelsim",
    "repro.core",
    "repro.workloads",
    "repro.engine",
    "repro.oracle",
    "repro.analysis",
]


@pytest.mark.parametrize("name", PACKAGES)
class TestPackages:
    def test_importable(self, name):
        importlib.import_module(name)

    def test_has_docstring(self, name):
        assert importlib.import_module(name).__doc__

    def test_all_exports_resolve(self, name):
        mod = importlib.import_module(name)
        for symbol in getattr(mod, "__all__", []):
            assert hasattr(mod, symbol), f"{name}.{symbol} missing"


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_symbols_present(self):
        for symbol in ("Simulator", "make_npb", "EngineConfig", "SpcdConfig",
                       "dual_xeon_e5_2650", "CommunicationMatrix"):
            assert symbol in repro.__all__

    def test_public_classes_documented(self):
        undocumented = []
        for symbol in repro.__all__:
            obj = getattr(repro, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(symbol)
        assert not undocumented

    def test_public_methods_documented(self):
        """Every public method of the headline classes has a docstring."""
        from repro import CommunicationMatrix, HierarchicalMapper, Simulator
        from repro.core.spcd import SpcdDetector

        undocumented = []
        for cls in (Simulator, CommunicationMatrix, HierarchicalMapper, SpcdDetector):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                if not inspect.getdoc(member):
                    undocumented.append(f"{cls.__name__}.{name}")
        assert not undocumented


class TestMesiState:
    def test_states(self):
        from repro.cachesim import MesiState

        assert {s.value for s in MesiState} == {"M", "E", "S", "I"}

    def test_line_helpers(self):
        from repro.cachesim.line import line_of, lines_of

        import numpy as np

        assert line_of(128) == 2
        assert lines_of(np.array([0, 64, 65])).tolist() == [0, 1, 1]
