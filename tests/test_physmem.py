"""Tests for the NUMA frame allocator."""

import pytest

from repro.errors import ConfigurationError, PageFaultError
from repro.mem.physmem import FrameAllocator
from repro.units import PAGE_SIZE


class TestAllocation:
    def test_allocates_on_requested_node(self):
        fa = FrameAllocator(2, 100)
        frame = fa.allocate(1)
        assert fa.node_of_frame(frame) == 1

    def test_frames_unique(self):
        fa = FrameAllocator(2, 50)
        frames = {fa.allocate(0) for _ in range(50)}
        assert len(frames) == 50

    def test_fallback_to_other_node_when_full(self):
        fa = FrameAllocator(2, 2)
        fa.allocate(0)
        fa.allocate(0)
        frame = fa.allocate(0)
        assert fa.node_of_frame(frame) == 1

    def test_exhaustion_raises(self):
        fa = FrameAllocator(1, 2)
        fa.allocate(0)
        fa.allocate(0)
        with pytest.raises(PageFaultError):
            fa.allocate(0)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            FrameAllocator(0, 10)


class TestFree:
    def test_free_then_reuse(self):
        fa = FrameAllocator(1, 1)
        frame = fa.allocate(0)
        fa.free(frame)
        assert fa.allocate(0) == frame

    def test_double_free_rejected(self):
        fa = FrameAllocator(1, 5)
        frame = fa.allocate(0)
        fa.free(frame)
        with pytest.raises(PageFaultError):
            fa.free(frame)

    def test_available_accounting(self):
        fa = FrameAllocator(1, 10)
        assert fa.available(0) == 10
        f = fa.allocate(0)
        assert fa.available(0) == 9
        fa.free(f)
        assert fa.available(0) == 10

    def test_node_of_frame_range_check(self):
        fa = FrameAllocator(2, 10)
        with pytest.raises(PageFaultError):
            fa.node_of_frame(20)


class TestForMemory:
    def test_sizes_by_bytes(self):
        fa = FrameAllocator.for_memory(2, 100 * PAGE_SIZE)
        assert fa.frames_per_node == 100
