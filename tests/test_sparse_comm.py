"""Sparse <-> dense communication-matrix bit-parity.

:class:`~repro.graphs.sparse.SparseCommMatrix` promises the exact float
results of the dense backend — not approximately, *bit for bit* — for every
mutation path (``add``, ``add_events`` small and large, ``merge`` both
directions, ``decay``) and every read-side view built on them.  The
differential suite here drives both backends through identical operation
sequences at a sweep of densities and compares digests; the stateful
model-checking companion lives in ``tests/model/test_sparse_model.py``.
"""

import numpy as np
import pytest

from repro.core.commmatrix import CommunicationMatrix
from repro.core.manager import matrix_digest
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import ConfigurationError
from repro.graphs.sparse import SparseCommMatrix, make_comm_matrix
from repro.workloads.npb import make_npb


def _random_ops(rng, n, n_ops):
    """A reproducible mixed-operation script (shared by both backends)."""
    ops = []
    for _ in range(n_ops):
        kind = rng.integers(0, 5)
        if kind == 0:
            ops.append(("add", int(rng.integers(n)), int(rng.integers(n)),
                        float(rng.integers(1, 6))))
        elif kind == 1:  # small add_events (interleaved scalar branch)
            ops.append(("events", int(rng.integers(n)),
                        rng.integers(0, n, size=int(rng.integers(1, 8)))))
        elif kind == 2:  # large add_events (two-dispatch branch)
            ops.append(("events", int(rng.integers(n)),
                        rng.integers(0, n, size=int(rng.integers(9, 40)))))
        elif kind == 3:
            ops.append(("decay", float(rng.uniform(0.5, 1.0))))
        else:
            ops.append(("add", int(rng.integers(n)), int(rng.integers(n)), 1.0))
    return ops


def _apply(matrix, ops):
    for op in ops:
        if op[0] == "add":
            matrix.add(op[1], op[2], op[3])
        elif op[0] == "events":
            matrix.add_events(op[1], op[2])
        else:
            matrix.decay(op[1])


@pytest.mark.parametrize("n,n_ops", [(4, 50), (16, 200), (64, 400)])
def test_digest_parity_across_densities(n, n_ops):
    rng = np.random.default_rng(n * 1000 + n_ops)
    ops = _random_ops(rng, n, n_ops)
    dense, sparse = CommunicationMatrix(n), SparseCommMatrix(n)
    _apply(dense, ops)
    _apply(sparse, ops)
    assert matrix_digest(sparse) == matrix_digest(dense)
    assert np.array_equal(sparse.matrix, dense.matrix)


class TestConstruction:
    def test_from_data_matches_dense(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 5, size=(8, 8)).astype(float)
        data = (data + data.T) / 2
        np.fill_diagonal(data, 0.0)
        assert matrix_digest(SparseCommMatrix(8, data)) == matrix_digest(
            CommunicationMatrix(8, data)
        )

    def test_rejects_asymmetric_data(self):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ConfigurationError):
            SparseCommMatrix(2, bad)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            SparseCommMatrix(0)

    def test_factory_honours_gate(self):
        assert isinstance(make_comm_matrix(4, sparse=True), SparseCommMatrix)
        dense = make_comm_matrix(4)
        assert isinstance(dense, CommunicationMatrix)
        assert not isinstance(dense, SparseCommMatrix)


class TestMergeParity:
    def _pair(self, seed, n=12):
        rng = np.random.default_rng(seed)
        ops = _random_ops(rng, n, 120)
        dense, sparse = CommunicationMatrix(n), SparseCommMatrix(n)
        _apply(dense, ops)
        _apply(sparse, ops)
        return dense, sparse

    @pytest.mark.parametrize("scale", [1.0, 0.25, 3.0])
    def test_sparse_merge_sparse(self, scale):
        d1, s1 = self._pair(1)
        d2, s2 = self._pair(2)
        d1.merge(d2, scale)
        s1.merge(s2, scale)
        assert matrix_digest(s1) == matrix_digest(d1)

    @pytest.mark.parametrize("scale", [1.0, 0.5])
    def test_sparse_merge_dense_and_reverse(self, scale):
        d1, s1 = self._pair(3)
        d2, s2 = self._pair(4)
        # sparse absorbing a dense other
        ref = d1.copy().merge(d2, scale)
        assert matrix_digest(s1.copy().merge(d2, scale)) == matrix_digest(ref)
        # dense absorbing a sparse other (inherited fast path reads ._m)
        assert matrix_digest(d1.copy().merge(s2, scale)) == matrix_digest(ref)

    def test_merge_order_independent_for_integer_matrices(self):
        shards = []
        for seed in range(4):
            s = SparseCommMatrix(8)
            rng = np.random.default_rng(seed)
            for _ in range(40):
                s.add(int(rng.integers(8)), int(rng.integers(8)), 1.0)
            shards.append(s)
        fwd = SparseCommMatrix(8)
        for s in shards:
            fwd.merge(s)
        rev = SparseCommMatrix(8)
        for s in reversed(shards):
            rev.merge(s)
        assert matrix_digest(fwd) == matrix_digest(rev)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SparseCommMatrix(4).merge(SparseCommMatrix(5))


class TestReadSideViews:
    def _pair(self):
        rng = np.random.default_rng(9)
        ops = _random_ops(rng, 10, 150)
        dense, sparse = CommunicationMatrix(10), SparseCommMatrix(10)
        _apply(dense, ops)
        _apply(sparse, ops)
        return dense, sparse

    def test_inherited_views_agree(self):
        dense, sparse = self._pair()
        assert sparse.total() == dense.total()
        assert sparse.nnz() == dense.nnz()
        assert sparse.density() == dense.density()
        assert np.array_equal(sparse.partners(), dense.partners())
        assert sparse.heterogeneity() == dense.heterogeneity()
        assert sparse.correlation(dense) == pytest.approx(1.0)

    def test_row_items_matches_dense_rows(self):
        dense, sparse = self._pair()
        for i in range(10):
            got = dict(sparse.row_items(i))
            want = {j: v for j, v in enumerate(dense.matrix[i]) if v != 0.0}
            assert got == want

    def test_csv_round_trip(self, tmp_path):
        dense, sparse = self._pair()
        sparse.to_csv(tmp_path / "s.csv")
        dense.to_csv(tmp_path / "d.csv")
        assert (tmp_path / "s.csv").read_text() == (tmp_path / "d.csv").read_text()

    def test_copy_reset_decay_zero(self):
        _, sparse = self._pair()
        clone = sparse.copy()
        assert isinstance(clone, SparseCommMatrix)
        assert matrix_digest(clone) == matrix_digest(sparse)
        clone.add(0, 1, 5.0)
        assert matrix_digest(clone) != matrix_digest(sparse)  # deep copy
        clone.decay(0.0)
        assert clone.total() == 0.0
        sparse.reset()
        assert sparse.nnz() == 0 and sparse.total() == 0.0

    def test_decay_validation(self):
        with pytest.raises(ConfigurationError):
            SparseCommMatrix(4).decay(1.5)


class TestEndToEnd:
    def test_sparse_run_digest_identical_to_dense(self):
        """REPRO_SPARSE_COMM flips storage only: same detection, same run."""
        cfg = EngineConfig(steps=80, batch_size=64)
        dense = Simulator(make_npb("CG", 8), "spcd", seed=11, config=cfg,
                          settings=RunSettings()).run()
        sparse = Simulator(make_npb("CG", 8), "spcd", seed=11, config=cfg,
                           settings=RunSettings(sparse_comm=True)).run()
        assert dense.exec_time_s == sparse.exec_time_s
        assert np.array_equal(dense.detected_matrix.matrix,
                              sparse.detected_matrix.matrix)

    def test_detector_uses_sparse_backend_when_asked(self):
        from repro.core.spcd import SpcdDetector

        det = SpcdDetector(8, sparse_matrix=True)
        assert isinstance(det.matrix, SparseCommMatrix)
