"""Fault-injection tests: timeouts, crashes, retries, checkpointed resume.

The killable/hanging shims live at module level so the supervised pool
(fork start method) can run them in child processes and so the grid
runner's factory tokens stay stable.  Crash-once shims coordinate across
attempts through a marker file: the first attempt plants the marker and
dies hard (``os._exit``, no Python cleanup — exactly what an OOM kill or
a segfaulting extension looks like to the parent); the retry sees the
marker and succeeds.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time
from functools import partial
from pathlib import Path

import pytest

from repro.engine import pool
from repro.engine.checkpoint import DONE, CellRecord, GridManifest, grid_key
from repro.engine.gridrunner import CellFailure, run_grid
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig
from repro.errors import ConfigurationError, GridExecutionError
from repro.obs.report import grid_report_paths
from repro.workloads.npb import make_npb

CFG = EngineConfig(steps=10, batch_size=64)


# ---------------------------------------------------------------------------
# worker shims (module level: stable identities, fork-safe)
# ---------------------------------------------------------------------------
def _double(payload):
    return payload * 2


def _raise_always(payload):
    raise ValueError(f"bad payload {payload}")


def _exit_hard(payload):
    os._exit(13)


def _hang(payload):
    time.sleep(300)


def _crash_once(marker_dir):
    marker = Path(marker_dir) / "crashed"
    if not marker.exists():
        marker.write_text("")
        os._exit(9)
    return "recovered"


def _flaky_workload(marker_dir, _name="CG"):
    """Workload factory whose first instantiation kills its worker."""
    marker = Path(marker_dir) / "crashed"
    if not marker.exists():
        marker.write_text("")
        os._exit(17)
    return make_npb(_name)


def _hanging_workload(marker_dir):
    """Workload factory that never returns (a wedged simulation)."""
    time.sleep(300)


def _tasks(payloads):
    return [pool.CellTask(index=i, payload=p) for i, p in enumerate(payloads)]


# ---------------------------------------------------------------------------
# the supervised pool
# ---------------------------------------------------------------------------
def test_pool_runs_tasks_in_order():
    outcomes = pool.run_tasks(_tasks([1, 2, 3, 4, 5]), _double, workers=2)
    assert all(o.ok and o.attempts == 1 for o in outcomes)
    assert [o.result for o in outcomes] == [2, 4, 6, 8, 10]


def test_pool_validates_arguments():
    with pytest.raises(ConfigurationError):
        pool.run_tasks([], _double, workers=0)
    with pytest.raises(ConfigurationError):
        pool.run_tasks([], _double, retries=-1)


def test_pool_forwards_worker_exceptions_and_exhausts_retries():
    (outcome,) = pool.run_tasks(
        _tasks(["x"]), _raise_always, workers=1, retries=1, backoff_s=0.0
    )
    assert not outcome.ok
    assert outcome.attempts == 2  # first try + one retry
    assert [f.kind for f in outcome.failures] == [pool.ERROR, pool.ERROR]
    assert "ValueError: bad payload x" in outcome.failures[-1].message


def test_pool_detects_crashed_worker_and_recovers(tmp_path):
    (outcome,) = pool.run_tasks(
        _tasks([str(tmp_path)]), _crash_once, workers=1, retries=2, backoff_s=0.0
    )
    assert outcome.ok and outcome.result == "recovered"
    assert outcome.attempts == 2
    assert outcome.failures[0].kind == pool.CRASH
    assert "exitcode" in outcome.failures[0].message


def test_pool_detects_hard_exit_without_result():
    (outcome,) = pool.run_tasks(
        _tasks(["x"]), _exit_hard, workers=1, retries=1, backoff_s=0.0
    )
    assert not outcome.ok
    assert [f.kind for f in outcome.failures] == [pool.CRASH, pool.CRASH]
    assert "13" in outcome.failures[0].message


def test_pool_kills_hung_worker_at_deadline():
    t0 = time.monotonic()
    (outcome,) = pool.run_tasks(
        _tasks(["x"]), _hang, workers=1, timeout_s=0.5, retries=0
    )
    elapsed = time.monotonic() - t0
    assert not outcome.ok
    assert outcome.failures[0].kind == pool.TIMEOUT
    assert "0.5" in outcome.failures[0].message
    assert elapsed < 30  # the 300 s sleep was killed, not awaited


def test_pool_event_stream_and_exponential_backoff(tmp_path):
    events = []
    pool.run_tasks(
        _tasks(["x"]),
        _raise_always,
        workers=1,
        retries=2,
        backoff_s=0.01,
        on_event=lambda kind, task, detail: events.append((kind, dict(detail))),
    )
    kinds = [k for k, _ in events]
    assert kinds == ["error", "retry", "error", "retry", "error", "failed"]
    backoffs = [d["backoff_s"] for k, d in events if k == "retry"]
    assert backoffs == [0.01, 0.02]  # backoff_s * 2**(attempt-1)
    assert events[-1][1]["attempts"] == 3


def test_pool_on_result_fires_as_cells_finish():
    landed = []
    pool.run_tasks(
        _tasks([1, 2]),
        _double,
        workers=2,
        on_result=lambda task, result, attempts: landed.append((task.index, result)),
    )
    assert sorted(landed) == [(0, 2), (1, 4)]


# ---------------------------------------------------------------------------
# the checkpoint manifest
# ---------------------------------------------------------------------------
def test_manifest_roundtrip_and_torn_tail(tmp_path):
    path = tmp_path / "grid.manifest.jsonl"
    gkey = grid_key(["aa", "bb"])
    with GridManifest(path, gkey) as m:
        m.record(CellRecord(key="aa", workload="CG", policy="os", rep=0, status=DONE))
    # simulate a writer killed mid-append: a torn, unparseable final line
    with open(path, "a", encoding="utf-8") as f:
        f.write('{"key": "bb", "status": "do')
    reloaded = GridManifest(path, gkey)
    assert reloaded.done_keys() == {"aa"}  # torn tail skipped, record kept


def test_manifest_survives_truncation_at_every_byte(tmp_path):
    """Byte-granular kill sweep: cut the file after every byte 0..size.

    A writer can be SIGKILLed at any instant, so every possible on-disk
    prefix must load without crashing and recover exactly the records
    whose trailing newline made it to disk (``manifest_prefix_model`` is
    the trivially-correct oracle).  This is the exhaustive version of
    ``test_manifest_roundtrip_and_torn_tail``'s single sampled cut.
    """
    from repro.check import manifest_prefix_model, truncation_sweep

    path = tmp_path / "grid.manifest.jsonl"
    gkey = grid_key(["aa", "bb", "cc"])
    with GridManifest(path, gkey) as m:
        m.record(CellRecord(key="aa", workload="CG", policy="os", rep=0, status=DONE))
        m.record(CellRecord(key="bb", workload="CG", policy="spcd", rep=1,
                            status="failed", error="timeout"))
        m.record(CellRecord(key="aa", workload="CG", policy="os", rep=0,
                            status=DONE, attempts=2))  # newest-per-key wins
    data = path.read_bytes()
    assert manifest_prefix_model(data, gkey)[1].keys() == {"aa", "bb"}
    mismatches = [
        cut for cut, actual, expected in truncation_sweep(path, gkey)
        if actual != expected
    ]
    assert mismatches == [], f"divergent truncation points: {mismatches}"


def test_truncated_manifest_never_loses_results(tmp_path):
    """Losing manifest bytes costs bookkeeping only, never results.

    Cell results live in content-addressed pickles; the manifest merely
    records which cells a resumed sweep may count as checkpointed.  Cut
    mid-way through the final manifest record and resume: the torn record
    drops out of ``resumed_cells``, but every result is still served from
    the cache and the aggregate stays byte-identical.
    """
    cache = tmp_path / "cache"
    first = run_grid(["CG"], ["os", "spcd"], 1, base_seed=7, config=CFG, cache=cache)
    assert first.ok and len(first.cells) == 2
    (manifest_path,) = cache.glob("grid-*.manifest.jsonl")
    lines = manifest_path.read_bytes().splitlines(keepends=True)
    manifest_path.write_bytes(b"".join(lines[:-1]) + lines[-1][:10])
    resumed = run_grid(["CG"], ["os", "spcd"], 1, base_seed=7, config=CFG, cache=cache)
    assert resumed.ok
    assert resumed.cache_hits == 2 and resumed.cache_misses == 0
    assert resumed.resumed_cells == 1  # the torn record no longer counts
    assert pickle.dumps(
        {k: v.metrics for k, v in sorted(resumed.cells.items())}
    ) == pickle.dumps({k: v.metrics for k, v in sorted(first.cells.items())})


def test_manifest_for_a_different_grid_is_reset(tmp_path):
    path = tmp_path / "grid.manifest.jsonl"
    with GridManifest(path, grid_key(["aa"])) as m:
        m.record(CellRecord(key="aa", workload="CG", policy="os", rep=0, status=DONE))
    other = GridManifest(path, grid_key(["zz"]))
    assert other.records == {}
    assert not path.exists()  # the stale file must never mask real work


# ---------------------------------------------------------------------------
# fault-tolerant grids
# ---------------------------------------------------------------------------
def test_grid_recovers_from_worker_crash(tmp_path):
    """A worker dying mid-cell is respawned; the sweep completes normally."""
    flaky = ("flaky", partial(_flaky_workload, str(tmp_path)))
    grid = run_grid(
        [flaky], ["os"], 1, base_seed=7, config=CFG, workers=2,
        retry_backoff_s=0.0,
    )
    assert grid.ok and grid.failures == []
    assert grid.crashes == 1 and grid.retries == 1
    # the recovered result is the result: identical to an undisturbed run
    clean = run_grid(["CG"], ["os"], 1, base_seed=7, config=CFG, workers=2)
    assert pickle.dumps(grid.cell("flaky", "os").metrics) == pickle.dumps(
        clean.cell("CG", "os").metrics
    )


def test_grid_times_out_hung_cell_and_degrades(tmp_path):
    """An unresponsive cell becomes a typed CellFailure, not a hung sweep."""
    grid = run_grid(
        [("hung", partial(_hanging_workload, str(tmp_path)))], ["os"], 1,
        base_seed=7, config=CFG,
        cell_timeout_s=0.5, cell_retries=1, retry_backoff_s=0.0,
    )
    assert not grid.ok
    assert grid.cells == {}  # no result for the dead cell ...
    (failure,) = grid.failures  # ... but a full typed account of it
    assert isinstance(failure, CellFailure)
    assert (failure.workload, failure.policy, failure.rep) == ("hung", "os", 0)
    assert failure.kind == "timeout" and failure.attempts == 2
    assert len(failure.history) == 2
    assert grid.timeouts == 2 and grid.retries == 1


def test_grid_strict_mode_raises_after_draining(tmp_path):
    with pytest.raises(GridExecutionError) as exc:
        run_grid(
            [("hung", partial(_hanging_workload, str(tmp_path)))], ["os"], 1,
            base_seed=7, config=CFG,
            cell_timeout_s=0.5, cell_retries=0, strict=True,
        )
    assert len(exc.value.failures) == 1
    assert exc.value.failures[0].kind == "timeout"


def test_grid_settings_object_configures_fault_tolerance(tmp_path):
    """The same knobs flow through settings=; explicit kwargs beat it."""
    settings = RunSettings(cell_timeout_s=0.5, cell_retries=0, strict=True)
    with pytest.raises(GridExecutionError):
        run_grid(
            [("hung", partial(_hanging_workload, str(tmp_path)))], ["os"], 1,
            base_seed=7, config=CFG, settings=settings,
        )
    grid = run_grid(
        [("hung", partial(_hanging_workload, str(tmp_path)))], ["os"], 1,
        base_seed=7, config=CFG, settings=settings, strict=False,
    )
    assert not grid.ok and len(grid.failures) == 1


def test_failed_cells_are_recorded_and_get_a_fresh_budget(tmp_path):
    """A failed cell's manifest record marks resumption, not permanence."""
    cache = tmp_path / "cache"
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    hung = ("cell", partial(_hanging_workload, str(marker_dir)))
    first = run_grid(
        [hung], ["os"], 1, base_seed=7, config=CFG, cache=cache,
        cell_timeout_s=0.5, cell_retries=0,
    )
    assert not first.ok
    (manifest_path,) = cache.glob("grid-*.manifest.jsonl")
    assert '"status":"failed"' in manifest_path.read_text()
    # same grid identity, now with a recoverable factory: the failed cell
    # is re-attempted (fresh budget), not skipped
    second = run_grid(
        [hung], ["os"], 1, base_seed=7, config=CFG, cache=cache,
        cell_timeout_s=0.5, cell_retries=0,
    )
    assert second.cache_hits == 0 and second.cache_misses == 1


def test_grid_reliability_events_reach_the_report(tmp_path):
    """Timeout/retry/failure events land in the grid trace and the report."""
    trace = tmp_path / "trace"
    run_grid(
        [("hung", partial(_hanging_workload, str(tmp_path)))], ["os"], 1,
        base_seed=7, config=CFG, trace=trace,
        cell_timeout_s=0.5, cell_retries=1, retry_backoff_s=0.0,
    )
    (grid_trace,) = trace.glob("grid-*.jsonl")
    (report,) = grid_report_paths([grid_trace])
    assert report.errors == []
    assert report.completed == 0 and report.failed == 1
    assert report.retries == 1
    assert report.attempt_failures == {"timeout": 2}
    assert "hung/os/rep0" in report.failed_cells[0]
    assert "timeout" in report.failed_cells[0]


# ---------------------------------------------------------------------------
# kill-and-resume: the tentpole acceptance scenario
# ---------------------------------------------------------------------------
_RESUME_GRID_SCRIPT = """\
import sys
from repro.engine.gridrunner import run_grid
from repro.engine.simulator import EngineConfig

run_grid(
    ["CG"], ["os", "spcd"], 3, base_seed=11,
    config=EngineConfig(steps=10, batch_size=64), cache=sys.argv[1],
)
"""


def test_killed_grid_resumes_from_checkpoint_byte_identically(tmp_path):
    """SIGKILL a sweep mid-flight; re-invoking re-runs only unfinished
    cells and the aggregate results are byte-identical to an undisturbed
    sweep."""
    cache = tmp_path / "cache"
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-c", _RESUME_GRID_SCRIPT, str(cache)],
        cwd=Path(__file__).resolve().parent.parent,
        env=env,
    )
    try:
        # wait for the first durable checkpoint record, then kill -9
        deadline = time.monotonic() + 120
        manifest_path = None
        while time.monotonic() < deadline:
            candidates = list(cache.glob("grid-*.manifest.jsonl"))
            if candidates and '"status":"done"' in candidates[0].read_text():
                manifest_path = candidates[0]
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        assert manifest_path is not None, "no cell checkpointed before the sweep ended"
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    assert proc.returncode != 0, "the sweep must have been killed mid-flight"

    done_before_resume = manifest_path.read_text().count('"status":"done"')
    assert 1 <= done_before_resume < 6

    resumed = run_grid(
        ["CG"], ["os", "spcd"], 3, base_seed=11, config=CFG, cache=cache
    )
    # only unfinished cells were re-run
    assert resumed.ok
    assert resumed.resumed_cells == done_before_resume
    assert resumed.cache_hits == done_before_resume
    assert resumed.cache_misses == 6 - done_before_resume

    # ... and the aggregate is byte-identical to an undisturbed sweep
    pristine = run_grid(
        ["CG"], ["os", "spcd"], 3, base_seed=11, config=CFG,
        cache=tmp_path / "cache2",
    )
    assert pickle.dumps(
        {k: v.metrics for k, v in sorted(resumed.cells.items())}
    ) == pickle.dumps({k: v.metrics for k, v in sorted(pristine.cells.items())})
