"""Tests for the blossom maximum-weight matching.

Cross-validated against ``networkx`` (whose implementation follows the same
classic formulation) and against brute force on small instances.
"""


import networkx as nx
import numpy as np
import pytest

from repro.core.matching import (
    greedy_matching,
    matching_weight,
    max_weight_matching,
    max_weight_perfect_matching,
)
from repro.errors import MatchingError


def brute_force_perfect(weights):
    """Optimal perfect matching by exhaustive search (n <= 10)."""
    n = weights.shape[0]

    def best(remaining):
        if not remaining:
            return 0.0, []
        first, *rest = remaining
        best_w, best_pairs = -np.inf, None
        for k, partner in enumerate(rest):
            w, pairs = best(rest[:k] + rest[k + 1 :])
            w += weights[first, partner]
            if w > best_w:
                best_w, best_pairs = w, pairs + [(first, partner)]
        return best_w, best_pairs

    return best(list(range(n)))


class TestSmallExact:
    def test_single_edge(self):
        assert max_weight_matching([(0, 1, 5)]) == [1, 0]

    def test_prefers_heavier_edge(self):
        mate = max_weight_matching([(0, 1, 1), (1, 2, 10)])
        assert mate[1] == 2 and mate[0] == -1

    def test_augmenting_path(self):
        # Path 0-1-2-3: take outer edges (total 12) not middle (10).
        edges = [(0, 1, 6), (1, 2, 10), (2, 3, 6)]
        mate = max_weight_matching(edges)
        assert mate == [1, 0, 3, 2]

    def test_blossom_triangle(self):
        # Odd cycle forces blossom handling.
        edges = [(0, 1, 8), (1, 2, 8), (0, 2, 8), (2, 3, 10)]
        mate = max_weight_matching(edges)
        assert mate[2] == 3
        assert mate[0] == 1

    def test_maxcardinality_forces_full_matching(self):
        edges = [(0, 1, 100), (1, 2, 1), (2, 3, 1), (0, 3, 1)]
        mate = max_weight_matching(edges, maxcardinality=True)
        assert -1 not in mate

    def test_rejects_self_loop(self):
        with pytest.raises(MatchingError):
            max_weight_matching([(1, 1, 5)])

    def test_empty_edges(self):
        assert max_weight_matching([]) == []


class TestAgainstBruteForce:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_perfect_matching_optimal(self, n, rng):
        for _ in range(15):
            w = rng.integers(0, 50, (n, n)).astype(float)
            w = (w + w.T) / 2
            np.fill_diagonal(w, 0)
            pairs = max_weight_perfect_matching(w)
            opt, _ = brute_force_perfect(w)
            assert matching_weight(w, pairs) == pytest.approx(opt)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("trial", range(25))
    def test_random_sparse_graphs(self, trial):
        rng = np.random.default_rng(trial)
        n = int(rng.integers(3, 14))
        edges = [
            (i, j, int(rng.integers(0, 30)))
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.6
        ]
        if not edges:
            return
        g = nx.Graph()
        g.add_weighted_edges_from(edges)
        for maxcard in (False, True):
            mate = max_weight_matching(edges, maxcard)
            mine = sum(
                w for (i, j, w) in edges if mate[i] == j
            )
            ref_pairs = nx.max_weight_matching(g, maxcardinality=maxcard)
            ref = sum(g[a][b]["weight"] for a, b in ref_pairs)
            assert mine == ref

    @pytest.mark.parametrize("n", [16, 32])
    def test_complete_graphs_float_weights(self, n):
        rng = np.random.default_rng(n)
        w = rng.random((n, n)) * 100
        w = (w + w.T) / 2
        np.fill_diagonal(w, 0)
        pairs = max_weight_perfect_matching(w)
        g = nx.Graph()
        for i in range(n):
            for j in range(i + 1, n):
                g.add_edge(i, j, weight=w[i, j])
        ref = sum(
            g[a][b]["weight"] for a, b in nx.max_weight_matching(g, maxcardinality=True)
        )
        assert matching_weight(w, pairs) == pytest.approx(ref)


class TestPerfectMatchingApi:
    def test_covers_all_vertices(self, rng):
        w = rng.random((12, 12))
        w = (w + w.T) / 2
        pairs = max_weight_perfect_matching(w)
        assert sorted(v for p in pairs for v in p) == list(range(12))

    def test_pairs_ordered(self, rng):
        w = rng.random((8, 8))
        w = (w + w.T) / 2
        assert all(i < j for i, j in max_weight_perfect_matching(w))

    def test_rejects_odd_n(self):
        with pytest.raises(MatchingError):
            max_weight_perfect_matching(np.zeros((3, 3)))

    def test_rejects_asymmetric(self):
        w = np.zeros((4, 4))
        w[0, 1] = 5
        with pytest.raises(MatchingError):
            max_weight_perfect_matching(w)

    def test_empty(self):
        assert max_weight_perfect_matching(np.zeros((0, 0))) == []

    def test_all_zero_weights_still_perfect(self):
        pairs = max_weight_perfect_matching(np.zeros((6, 6)))
        assert len(pairs) == 3


class TestGreedy:
    def test_greedy_takes_heaviest_first(self):
        w = np.zeros((4, 4))
        w[0, 1] = w[1, 0] = 10
        w[2, 3] = w[3, 2] = 1
        assert set(greedy_matching(w)) == {(0, 1), (2, 3)}

    def test_greedy_at_least_half_optimal(self, rng):
        for _ in range(20):
            w = rng.random((10, 10))
            w = (w + w.T) / 2
            np.fill_diagonal(w, 0)
            opt = matching_weight(w, max_weight_perfect_matching(w))
            grd = matching_weight(w, greedy_matching(w))
            assert grd >= 0.5 * opt - 1e-9

    def test_greedy_is_perfect(self, rng):
        w = rng.random((8, 8))
        w = (w + w.T) / 2
        pairs = greedy_matching(w)
        assert sorted(v for p in pairs for v in p) == list(range(8))

    def test_greedy_rejects_odd(self):
        with pytest.raises(MatchingError):
            greedy_matching(np.zeros((5, 5)))
