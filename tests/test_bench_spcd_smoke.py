"""Smoke test: the fault-path microbenchmark runs and its schema is stable.

``benchmarks/bench_kernels.py`` emits ``BENCH_spcd.json`` from the driver in
``benchmarks/spcd_faultbench.py``; this loads the driver directly (the
benchmarks directory is not a package) with tiny parameters and pins the
payload schema so the JSON artifact cannot silently change shape.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_DRIVER = Path(__file__).parent.parent / "benchmarks" / "spcd_faultbench.py"


@pytest.fixture(scope="module")
def faultbench():
    spec = importlib.util.spec_from_file_location("spcd_faultbench", _DRIVER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_driver_runs_and_schema_is_stable(faultbench):
    payload = faultbench.run_spcd_fault_bench(
        n_threads=8,
        n_pages=256,
        batches=6,
        faults_per_batch=32,
        table_size=509,
        seed=3,
    )
    assert set(payload) == {
        "faults",
        "batches",
        "faults_per_batch",
        "n_threads",
        "fast_faults_per_s",
        "slow_faults_per_s",
        "speedup",
    }
    assert payload["faults"] == 6 * 32
    assert payload["fast_faults_per_s"] > 0
    assert payload["slow_faults_per_s"] > 0
    assert payload["speedup"] > 0


def test_driver_covers_scalar_cutover(faultbench):
    """Tiny batches route through the scalar small-batch paths and still agree."""
    payload = faultbench.run_spcd_fault_bench(
        n_threads=4,
        n_pages=128,
        batches=8,
        faults_per_batch=3,
        table_size=61,
        seed=11,
    )
    assert payload["faults"] == 8 * 3
