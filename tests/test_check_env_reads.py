"""The env-read lint: alias-aware detection, dedup, and the repo gate."""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_env_reads", REPO / "tools" / "check_env_reads.py"
)
check_env_reads = importlib.util.module_from_spec(_spec)
assert _spec.loader is not None
_spec.loader.exec_module(check_env_reads)


def _violations(tmp_path: Path, source: str) -> list[str]:
    path = tmp_path / "mod.py"
    path.write_text(source, encoding="utf-8")
    return check_env_reads.check_file(path, "mod.py")


class TestDetection:
    def test_clean_module_passes(self, tmp_path):
        assert _violations(tmp_path, "import os\nx = os.path.join('a', 'b')\n") == []

    def test_environ_subscript(self, tmp_path):
        out = _violations(tmp_path, "import os\nv = os.environ['REPRO_TRACE']\n")
        assert out == ["mod.py:2: os.environ"]

    def test_environ_get(self, tmp_path):
        out = _violations(tmp_path, "import os\nv = os.environ.get('X')\n")
        assert out == ["mod.py:2: os.environ"]

    def test_getenv_call_reported_once(self, tmp_path):
        # a Call whose func is the os.getenv attribute is ONE site, not two
        out = _violations(tmp_path, "import os\nv = os.getenv('X', '1')\n")
        assert out == ["mod.py:2: os.getenv"]

    def test_environb(self, tmp_path):
        out = _violations(tmp_path, "import os\nv = os.environb[b'X']\n")
        assert out == ["mod.py:2: os.environb"]

    def test_aliased_os_import(self, tmp_path):
        out = _violations(tmp_path, "import os as _o\nv = _o.getenv('X')\n")
        assert out == ["mod.py:2: _o.getenv"]

    def test_from_import_environ(self, tmp_path):
        out = _violations(
            tmp_path, "from os import environ as env\nv = env.get('X')\n"
        )
        # the import itself and the later load are both flagged
        assert out == ["mod.py:1: from os import environ", "mod.py:2: env"]

    def test_from_import_getenv(self, tmp_path):
        out = _violations(tmp_path, "from os import getenv\nv = getenv('X')\n")
        assert out == ["mod.py:1: from os import getenv", "mod.py:2: getenv"]

    def test_unrelated_names_not_flagged(self, tmp_path):
        # a local called `getenv` that is NOT os.getenv is fine
        out = _violations(tmp_path, "def getenv(k):\n    return k\nv = getenv('X')\n")
        assert out == []

    def test_assignment_target_not_flagged(self, tmp_path):
        out = _violations(tmp_path, "environ = {}\nenviron['X'] = 1\n")
        assert out == []


class TestMain:
    def _tree(self, tmp_path: Path, files: "dict[str, str]") -> Path:
        root = tmp_path / "pkg"
        for rel, source in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        return root

    def test_allowed_module_may_read(self, tmp_path, capsys):
        root = self._tree(
            tmp_path,
            {"engine/settings.py": "import os\nv = os.environ.get('REPRO_X')\n"},
        )
        assert check_env_reads.main([str(root)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_serve_modules_are_scanned(self, tmp_path, capsys):
        root = self._tree(
            tmp_path,
            {
                "engine/settings.py": "import os\n",
                "serve/server.py": "import os\nport = os.getenv('REPRO_SERVE_PORT')\n",
            },
        )
        assert check_env_reads.main([str(root)]) == 1
        err = capsys.readouterr().err
        assert "serve/server.py:2: os.getenv" in err

    def test_missing_root_is_usage_error(self, tmp_path, capsys):
        assert check_env_reads.main([str(tmp_path / "nope")]) == 2
        assert "no such directory" in capsys.readouterr().err


def test_repo_package_is_clean(capsys):
    """The real src/repro tree (serve included) passes the lint."""
    assert check_env_reads.main([str(REPO / "src" / "repro")]) == 0
    out = capsys.readouterr().out
    assert "ok: no stray environment reads" in out
