"""Tests for deterministic seed derivation."""

import numpy as np
import pytest

from repro.rng import RngFactory, derive_seed, interleave_choice, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_differs_by_label(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_sensitive(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_fits_63_bits(self):
        for i in range(50):
            assert 0 <= derive_seed(7, i) < 2**63


class TestRngFactory:
    def test_same_labels_same_stream(self):
        f = RngFactory(9)
        a = f.rng("x").random(5)
        b = f.rng("x").random(5)
        assert np.allclose(a, b)

    def test_different_labels_different_stream(self):
        f = RngFactory(9)
        assert not np.allclose(f.rng("x").random(5), f.rng("y").random(5))

    def test_spawn_is_nested_derivation(self):
        f = RngFactory(9)
        child = f.spawn("sub")
        assert child.root_seed == f.seed("sub")

    def test_make_rng_matches_factory(self):
        assert np.allclose(
            make_rng(3, "w", 0).random(4), RngFactory(3).rng("w", 0).random(4)
        )


class TestInterleaveChoice:
    def test_respects_zero_weights(self, rng):
        picks = {interleave_choice(rng, [0.0, 1.0, 0.0]) for _ in range(20)}
        assert picks == {1}

    def test_rejects_all_zero(self, rng):
        with pytest.raises(ValueError):
            interleave_choice(rng, [0.0, 0.0])

    def test_distribution_roughly_proportional(self, rng):
        counts = np.zeros(2)
        for _ in range(2000):
            counts[interleave_choice(rng, [1.0, 3.0])] += 1
        assert 0.2 < counts[0] / 2000 < 0.3
