"""Tests for cache parameters, interconnect and NUMA models."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.cache_params import (
    L1D_E5_2650,
    L2_E5_2650,
    L3_E5_2650,
    CacheParams,
)
from repro.machine.interconnect import QPI_SNB, RING_SNB, InterconnectModel, LinkParams
from repro.machine.numa import NumaModel
from repro.machine.topology import CommDistance
from repro.units import KIB


class TestCacheParams:
    def test_num_sets(self):
        p = CacheParams("t", 32 * KIB, 8, 64)
        assert p.num_sets == 64

    def test_num_lines(self):
        assert L2_E5_2650.num_lines == 4096

    def test_l3_geometry_is_consistent(self):
        assert L3_E5_2650.num_sets * L3_E5_2650.associativity * 64 == L3_E5_2650.size

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheParams("bad", 48 * KIB, 8, 64)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            CacheParams("bad", 0, 8, 64)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheParams("bad", 32 * KIB, 8, 48)

    def test_latency_increases_with_level(self):
        assert L1D_E5_2650.latency_ns < L2_E5_2650.latency_ns < L3_E5_2650.latency_ns


class TestLinkParams:
    def test_transfer_time_has_latency_floor(self):
        assert RING_SNB.transfer_ns(0) == RING_SNB.latency_ns

    def test_transfer_time_grows_with_size(self):
        assert QPI_SNB.transfer_ns(4096) > QPI_SNB.transfer_ns(64)

    def test_energy_proportional_to_bytes(self):
        assert QPI_SNB.transfer_pj(128) == 2 * QPI_SNB.transfer_pj(64)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            LinkParams(latency_ns=-1, bandwidth_gbps=10, energy_pj_per_byte=1)

    def test_qpi_slower_and_hungrier_than_ring(self):
        assert QPI_SNB.latency_ns > RING_SNB.latency_ns
        assert QPI_SNB.energy_pj_per_byte > RING_SNB.energy_pj_per_byte


class TestInterconnectModel:
    @pytest.fixture
    def ic(self):
        return InterconnectModel()

    def test_core_local_is_free(self, ic):
        assert ic.transfer_ns(CommDistance.SAME_CORE) == 0.0
        assert ic.transfer_pj(CommDistance.SAME_PU) == 0.0

    def test_cost_monotone_with_distance(self, ic):
        costs = [
            ic.transfer_ns(d)
            for d in (CommDistance.SAME_CORE, CommDistance.SAME_SOCKET, CommDistance.CROSS_SOCKET)
        ]
        assert costs == sorted(costs) and costs[1] < costs[2]

    def test_cross_socket_includes_both_rings(self, ic):
        expected = 2 * ic.ring.transfer_ns(64) + ic.offchip.transfer_ns(64)
        assert ic.transfer_ns(CommDistance.CROSS_SOCKET, 64) == pytest.approx(expected)

    def test_crosses_offchip_flag(self, ic):
        assert ic.crosses_offchip(CommDistance.CROSS_SOCKET)
        assert not ic.crosses_offchip(CommDistance.SAME_SOCKET)


class TestNumaModel:
    @pytest.fixture
    def numa(self, machine):
        return NumaModel(machine)

    def test_one_node_per_socket(self, numa):
        assert numa.n_nodes() == 2

    def test_local_cheaper_than_remote(self, numa):
        local = numa.access_latency_ns(0, 0)
        remote = numa.access_latency_ns(0, 1)
        assert local < remote

    def test_locality_check(self, numa, machine):
        pu_on_socket1 = machine.pus_of_socket(1)[0]
        assert numa.is_local(pu_on_socket1, 1)
        assert not numa.is_local(pu_on_socket1, 0)

    def test_remote_energy_higher(self, numa):
        assert numa.access_energy_pj(0, 1) > numa.access_energy_pj(0, 0)

    def test_node_capacity_from_machine(self, numa, machine):
        assert numa.nodes[0].capacity == machine.memory_per_node
