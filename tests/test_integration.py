"""Integration tests: end-to-end behaviour matching the paper's findings.

These use moderately sized runs (seconds of wall time); the full-size
reproduction lives in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.core.manager import SpcdConfig
from repro.core.mapping import mapping_comm_cost
from repro.engine.simulator import EngineConfig, Simulator
from repro.units import MSEC
from repro.workloads.npb import make_npb
from repro.workloads.producer_consumer import ProducerConsumerWorkload

MEDIUM = EngineConfig(batch_size=256, steps=120)


@pytest.fixture(scope="module")
def sp_runs():
    """SP (the paper's best case) under all four policies, one seed."""
    out = {}
    for policy in ("os", "random", "oracle", "spcd"):
        sim = Simulator(make_npb("SP"), policy, seed=11, config=MEDIUM)
        out[policy] = (sim, sim.run())
    return out


class TestSpShapes:
    def test_oracle_reduces_exec_time(self, sp_runs):
        _, os_res = sp_runs["os"]
        _, oracle_res = sp_runs["oracle"]
        assert oracle_res.exec_time_s < os_res.exec_time_s

    def test_oracle_cuts_c2c_strongly(self, sp_runs):
        """Paper: cache-to-cache falls much faster than execution time."""
        _, os_res = sp_runs["os"]
        _, oracle_res = sp_runs["oracle"]
        c2c_ratio = oracle_res.c2c_transactions / os_res.c2c_transactions
        time_ratio = oracle_res.exec_time_s / os_res.exec_time_s
        assert c2c_ratio < 0.75
        assert c2c_ratio < time_ratio

    def test_oracle_nearly_eliminates_cross_socket_c2c(self, sp_runs):
        _, os_res = sp_runs["os"]
        _, oracle_res = sp_runs["oracle"]
        assert oracle_res.c2c_inter < 0.3 * os_res.c2c_inter

    def test_spcd_detects_the_chain(self, sp_runs):
        sim, res = sp_runs["spcd"]
        corr = res.detected_matrix.correlation(sim.workload.ground_truth())
        assert corr > 0.5

    def test_spcd_mapping_close_to_oracle_quality(self, sp_runs):
        spcd_sim, spcd_res = sp_runs["spcd"]
        oracle_sim, _ = sp_runs["oracle"]
        gt = spcd_sim.workload.ground_truth().matrix
        machine = spcd_sim.machine
        spcd_cost = mapping_comm_cost(gt, spcd_sim.scheduler.placement(), machine)
        oracle_cost = mapping_comm_cost(gt, oracle_sim.scheduler.placement(), machine)
        random_cost = mapping_comm_cost(
            gt, np.random.default_rng(0).permutation(32), machine
        )
        assert spcd_cost < random_cost
        assert spcd_cost <= 2.2 * oracle_cost

    def test_spcd_migrates_but_sparingly(self, sp_runs):
        _, res = sp_runs["spcd"]
        assert 1 <= res.migrations <= 6  # paper Table II: SP performed 4

    def test_spcd_overhead_under_two_percent_envelope(self, sp_runs):
        """Paper Sec. V-F: total SPCD overhead below ~2%."""
        _, res = sp_runs["spcd"]
        assert res.detection_pct < 2.0
        assert res.mapping_pct < 1.0

    def test_detected_pattern_is_heterogeneous(self, sp_runs):
        _, res = sp_runs["spcd"]
        assert res.detected_matrix.heterogeneity() > 1.0


class TestHomogeneousShapes:
    def test_ep_no_mapping_benefit(self):
        times = {}
        for policy in ("os", "oracle"):
            times[policy] = Simulator(
                make_npb("EP"), policy, seed=11, config=MEDIUM
            ).run().exec_time_s
        assert abs(times["oracle"] / times["os"] - 1) < 0.05

    def test_ep_migrates_at_most_once(self):
        res = Simulator(make_npb("EP"), "spcd", seed=11, config=MEDIUM).run()
        assert res.migrations <= 1

    def test_ft_uniform_pattern_detected(self):
        res = Simulator(make_npb("FT"), "spcd", seed=11, config=MEDIUM).run()
        det = res.detected_matrix
        if det.total() > 0:
            assert det.heterogeneity() < 1.5  # homogeneous-ish


class TestInjectionBehaviour:
    def test_injected_faults_resolved_quickly(self):
        sim = Simulator(make_npb("BT"), "spcd", seed=5, config=MEDIUM)
        res = sim.run()
        # every cleared page that got re-touched produced exactly one fault
        assert res.injected_faults <= sim.manager.injector.cleared_total

    def test_paper_literal_cumulative_mode_respects_ten_percent(self):
        from repro.core.injector import InjectorMode

        scfg = SpcdConfig(injector_mode=InjectorMode.CUMULATIVE)
        res = Simulator(
            make_npb("BT"), "spcd", seed=5, config=MEDIUM, spcd_config=scfg
        ).run()
        assert res.injected_ratio <= 0.11


class TestDynamicDetection:
    def test_producer_consumer_phases_tracked(self):
        """The Fig. 6 experiment: per-phase matrices match per-phase truth."""
        wl = ProducerConsumerWorkload(phase_period_ns=400 * MSEC)
        cfg = EngineConfig(batch_size=256, steps=260)
        sim = Simulator(wl, "spcd", seed=5, config=cfg)
        snaps = []

        def cb(s, step, now):
            if step % 20 == 19:
                snaps.append((now, s.manager.detector.snapshot_matrix()))

        sim.run(cb)
        # Build interval matrices and check they correlate with the phase
        # that was active during the interval.
        from repro.workloads.patterns import (
            distant_pairs_pattern,
            neighbor_pairs_pattern,
        )

        n = wl.n_threads
        iu = np.triu_indices(n, 1)
        good = total = 0
        for (t0, m0), (t1, m1) in zip(snaps, snaps[1:]):
            if wl.phase_at(t0) != wl.phase_at(t1):
                continue  # transition interval (Fig. 6c): skip
            interval = m1.diff(m0).matrix[iu]
            if interval.sum() < 10:
                continue
            phase = wl.phase_at(t1)
            own = neighbor_pairs_pattern(n) if phase == 0 else distant_pairs_pattern(n)
            other = distant_pairs_pattern(n) if phase == 0 else neighbor_pairs_pattern(n)
            c_own = np.corrcoef(interval, own[iu])[0, 1]
            c_other = np.corrcoef(interval, other[iu])[0, 1]
            total += 1
            if c_own > c_other:
                good += 1
        assert total >= 3
        assert good / total > 0.7

    def test_producer_consumer_remaps_across_phases(self):
        wl = ProducerConsumerWorkload(phase_period_ns=300 * MSEC)
        cfg = EngineConfig(batch_size=256, steps=320)
        res = Simulator(wl, "spcd", seed=5, config=cfg).run()
        assert res.migrations >= 2  # adapted to at least one phase change
