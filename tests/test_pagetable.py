"""Tests for the flat-stored page table."""

import numpy as np
import pytest

from repro.errors import AddressError, PageFaultError
from repro.mem.pagetable import NO_FRAME, PageTable


@pytest.fixture
def table():
    return PageTable(capacity=128)


class TestMapping:
    def test_starts_empty(self, table):
        assert table.n_populated == 0
        assert not table.is_present(5)
        assert table.frame_of(5) == NO_FRAME

    def test_map_sets_all_state(self, table):
        table.map_page(7, frame=42, home_node=1)
        e = table.entry(7)
        assert e.present and e.populated
        assert e.frame == 42 and e.home_node == 1

    def test_double_map_rejected(self, table):
        table.map_page(7, 42, 0)
        with pytest.raises(PageFaultError):
            table.map_page(7, 43, 0)

    def test_unmap_returns_frame(self, table):
        table.map_page(7, 42, 0)
        assert table.unmap_page(7) == 42
        assert not table.is_populated(7)

    def test_unmap_unpopulated_rejected(self, table):
        with pytest.raises(PageFaultError):
            table.unmap_page(7)

    def test_capacity_enforced(self, table):
        with pytest.raises(AddressError):
            table.is_present(128)

    def test_zero_capacity_rejected(self):
        with pytest.raises(AddressError):
            PageTable(0)


class TestPresentBit:
    def test_clear_present_counts_only_eligible(self, table):
        table.map_page(1, 10, 0)
        table.map_page(2, 11, 0)
        cleared = table.clear_present(np.array([1, 2, 3]))  # 3 unpopulated
        assert cleared == 2
        assert not table.is_present(1) and not table.is_present(2)

    def test_clear_twice_counts_once(self, table):
        table.map_page(1, 10, 0)
        assert table.clear_present(1) == 1
        assert table.clear_present(1) == 0

    def test_restore_present(self, table):
        table.map_page(1, 10, 0)
        table.clear_present(1)
        table.restore_present(1)
        assert table.is_present(1)

    def test_restore_unpopulated_rejected(self, table):
        with pytest.raises(PageFaultError):
            table.restore_present(1)

    def test_present_mask_vectorised(self, table):
        table.map_page(1, 10, 0)
        table.map_page(3, 11, 0)
        mask = table.present_mask(np.array([0, 1, 2, 3]))
        assert mask.tolist() == [False, True, False, True]

    def test_clear_present_out_of_range(self, table):
        with pytest.raises(AddressError):
            table.clear_present(500)

    def test_present_vpns_sorted(self, table):
        for vpn in (9, 3, 5):
            table.map_page(vpn, vpn, 0)
        assert table.present_vpns().tolist() == [3, 5, 9]


class TestAccessedBits:
    def test_mark_and_age(self, table):
        table.map_page(1, 10, 0)
        table.mark_accessed(1)
        assert table.accessed_present_vpns().tolist() == [1]
        table.age_accessed()
        assert table.accessed_present_vpns().size == 0

    def test_accessed_requires_present(self, table):
        table.map_page(1, 10, 0)
        table.mark_accessed_batch(np.array([1]))
        table.clear_present(1)
        assert table.accessed_present_vpns().size == 0

    def test_dirty_via_mark_accessed(self, table):
        table.map_page(1, 10, 0)
        table.mark_accessed(1, dirty=True)
        assert table.entry(1).dirty


class TestWalk:
    def test_walk_counts(self, table):
        table.map_page(1, 10, 0)
        before = table.walk_count
        table.walk(1)
        assert table.walk_count == before + 1

    def test_walk_returns_radix(self, table):
        assert table.walk(5) == (0, 0, 0, 5)


class TestConsistency:
    def test_fresh_table_consistent(self, table):
        assert table.consistency_ok()

    def test_consistent_after_random_ops(self, table, rng):
        populated = set()
        for _ in range(300):
            vpn = int(rng.integers(0, 128))
            op = rng.integers(0, 4)
            if op == 0 and vpn not in populated:
                table.map_page(vpn, vpn + 1000, int(rng.integers(0, 2)))
                populated.add(vpn)
            elif op == 1 and vpn in populated:
                table.unmap_page(vpn)
                populated.discard(vpn)
            elif op == 2:
                table.clear_present(vpn)
            elif op == 3 and vpn in populated:
                table.mark_accessed(vpn, dirty=bool(rng.integers(0, 2)))
        assert table.consistency_ok()
        assert table.n_populated == len(populated)
