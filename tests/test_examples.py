"""Smoke tests for the example scripts.

The heavy examples are compiled (syntax + imports) and the fast one is
executed end-to-end; the full scripts run in the documented workflows.
"""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestAllExamples:
    def test_parses(self, path):
        ast.parse(path.read_text())

    def test_has_module_docstring(self, path):
        assert ast.get_docstring(ast.parse(path.read_text()))

    def test_has_main_guard(self, path):
        assert 'if __name__ == "__main__":' in path.read_text()


def test_example_names_cover_required_scenarios():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_custom_topology_example_runs():
    script = Path(__file__).parent.parent / "examples" / "custom_topology.py"
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=300
    )
    assert proc.returncode == 0, proc.stderr
    assert "communication cost" in proc.stdout
    assert "% lower" in proc.stdout
