"""Differential tests: batched MESI drains vs the scalar drain.

The batched drains (:attr:`CoherentHierarchy.batch_mesi`, the default) are
a layer on top of the fast path: same-level L2-hit refill runs are
collected and drained through batched L1 installs instead of the
per-access loop.  ``REPRO_SLOW_MESI=1`` turns only this layer off, which
makes the two modes directly comparable — these tests pin bit-identical
MESI transitions, LRU decisions, dirty flags and counters at three
levels: raw access streams against the hierarchy, full simulations on the
paper's workloads, and the cache-level batch-install primitive.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cachesim.cache import LegacySetAssocCache, SetAssocCache
from repro.cachesim.hierarchy import CoherentHierarchy
from repro.cachesim.stats import CacheStats
from repro.engine.runner import run_single
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig
from repro.machine.cache_params import CacheParams
from repro.machine.topology import build_machine
from repro.units import KIB
from repro.workloads.npb import make_npb
from repro.workloads.producer_consumer import ProducerConsumerWorkload


def parity_machine():
    """Small enough to force evictions, enough L1 sets to form drain chunks."""
    return build_machine(
        2, 2, 2,
        l1=CacheParams("L1", 2 * KIB, 2, 64, 2.0, 1),
        l2=CacheParams("L2", 8 * KIB, 2, 64, 6.0, 2),
        l3=CacheParams("L3", 16 * KIB, 4, 64, 15.0, 3),
    )


def hierarchy_snapshot(h: CoherentHierarchy) -> dict:
    """Everything the MESI protocol can observe, in comparable form."""
    snap = {
        "stats": dataclasses.asdict(h.stats),
        "sharers": dict(h._sharers),
        "dirty_owner": dict(h._dirty_owner),
    }
    for group in (h.l1, h.l2, h.l3):
        for cache in group:
            resident = sorted(cache.resident_lines())
            snap[cache.name] = (
                cache.hits,
                cache.misses,
                cache.evictions,
                resident,
                [cache.is_dirty(line) for line in resident],
            )
    return snap


def drain_heavy_stream(rng, n: int, write_p: float, lines_hi: int):
    """RLE-friendly mix with read-only re-sweeps (the drained shape)."""
    lines: list[int] = []
    writes: list[int] = []
    while len(lines) < n:
        mode = rng.random()
        if mode < 0.3:
            line = int(rng.integers(0, lines_hi))
            rep = int(rng.integers(1, 40))
            lines += [line] * rep
            writes += [int(rng.random() < write_p) for _ in range(rep)]
        else:
            base = int(rng.integers(0, lines_hi))
            sweep_writes = mode < 0.65  # else: read-only re-sweep (L2 hits)
            for k in range(int(rng.integers(16, 80))):
                lines.append((base + k) % lines_hi)
                writes.append(int(rng.random() < write_p) if sweep_writes else 0)
    homes = [0] * n
    return lines[:n], writes[:n], homes


@pytest.mark.parametrize("write_p", [0.0, 0.05, 0.3])
def test_hierarchy_streams_bit_identical(write_p):
    """Batched drains == scalar drain == reference, on every observable."""
    rng = np.random.default_rng(int(write_p * 100) + 17)
    streams = [
        [drain_heavy_stream(rng, 600, write_p, 512) for _ in range(8)]
        for _ in range(5)
    ]
    snaps = []
    for mode in ("batched", "scalar_drain", "reference"):
        if mode == "reference":
            h = CoherentHierarchy(parity_machine(), fast_path=False)
        else:
            h = CoherentHierarchy(
                parity_machine(), fast_path=True, batch_mesi=mode == "batched"
            )
        for step in streams:
            for pu, (lines, writes, homes) in enumerate(step):
                h.access_batch_pu(pu, lines, writes, homes)
        h.check_invariants()
        snaps.append(hierarchy_snapshot(h))
    assert snaps[0] == snaps[1]
    assert snaps[0] == snaps[2]


def test_drains_engage_on_l2_resident_sweeps():
    """The batched path must actually exercise ``_drain_l2_hits`` here.

    A cyclic read-only sweep of an L2-resident, L1-overflowing region is
    the canonical refill pattern; if the drain gate never fires on it the
    parity assertions above would be testing nothing.
    """
    machine = parity_machine()
    h = CoherentHierarchy(machine, fast_path=True, batch_mesi=True)
    drained = 0
    original = h._drain_l2_hits

    def counting(*args, **kwargs):
        nonlocal drained
        drained += 1
        return original(*args, **kwargs)

    h._drain_l2_hits = counting
    n_l1 = (2 * KIB) // 64  # 32 lines
    n = 3 * n_l1  # fits L2 (384 lines here), blows L1
    lines = np.arange(n, dtype=np.int64)
    writes = np.zeros(n, dtype=np.int64)
    homes = np.zeros(n, dtype=np.int64)
    # Warm the L2 in sub-BYPASS_MIN_BATCH slices: a cold full-size batch
    # is all misses and would park the core in the adaptive bypass (where
    # the probe machinery — and with it the drains — never runs).
    for k in range(0, n, 32):
        h.access_batch_pu(0, lines[k : k + 32], writes[k : k + 32], homes[k : k + 32])
    for _ in range(6):
        h.access_batch_pu(0, lines, writes, homes)
    assert drained > 0
    assert h.stats.l2_hits > 0


@pytest.mark.parametrize(
    "factory",
    [ProducerConsumerWorkload, lambda: make_npb("SP"), lambda: make_npb("CG")],
    ids=["producer_consumer", "npb_sp", "npb_cg"],
)
def test_full_simulation_parity(factory):
    """Full SPCD runs are field-identical across the drain modes."""
    cfg = EngineConfig(steps=25, batch_size=128)
    batched = run_single(
        factory, "spcd", seed=99, config=cfg, settings=RunSettings(slow_mesi=False)
    )
    scalar = run_single(
        factory, "spcd", seed=99, config=cfg, settings=RunSettings(slow_mesi=True)
    )
    for f in dataclasses.fields(CacheStats):
        assert getattr(batched.stats, f.name) == getattr(scalar.stats, f.name), f.name
    for metric in ("exec_time_s", "l2_mpki", "l3_mpki", "c2c_transactions"):
        assert batched.metric(metric) == scalar.metric(metric)


def test_slow_mesi_env_reaches_hierarchy(monkeypatch):
    """REPRO_SLOW_MESI=1 must disable the drain layer (and only it)."""
    monkeypatch.setenv("REPRO_SLOW_MESI", "1")
    h = CoherentHierarchy(parity_machine())
    assert h.fast_path and not h.batch_mesi
    monkeypatch.delenv("REPRO_SLOW_MESI")
    h = CoherentHierarchy(parity_machine())
    assert h.fast_path and h.batch_mesi


# ----------------------------------------------------------------------
# cache-level primitives the drains are built on
# ----------------------------------------------------------------------
def test_insert_batch_matches_scalar_inserts():
    """A distinct-set batched install == the same installs done one by one."""
    params = CacheParams("L1", 2 * KIB, 2, 64, 2.0, 1)  # 16 sets
    rng = np.random.default_rng(3)
    batched = SetAssocCache(params, "b")
    scalar = SetAssocCache(params, "s")
    # Warm both with identical scalar traffic (occupies ways, sets ages).
    warm = rng.integers(0, 200, size=300).astype(np.int64)
    for line in warm.tolist():
        for cache in (batched, scalar):
            if not cache.lookup(line):
                cache.insert(line, dirty=bool(line % 3 == 0))
    # One batch: one line per set, fresh lines, mixed dirtiness.
    lines = np.asarray([1000 + s for s in range(16)], dtype=np.int64)
    dirty = np.asarray([s % 2 == 0 for s in range(16)])
    batched.journal = set()
    batched.insert_batch(lines, dirty)
    for line, d in zip(lines.tolist(), dirty.tolist()):
        scalar.insert(line, dirty=d)
    assert sorted(batched.resident_lines()) == sorted(scalar.resident_lines())
    for line in batched.resident_lines():
        assert batched.is_dirty(line) == scalar.is_dirty(line)
    assert batched.evictions == scalar.evictions
    # Installed lines and victims are journaled (classification staleness).
    assert set(lines.tolist()) <= batched.journal
    # LRU order must survive: evict everything via fresh same-set traffic
    # and check both caches choose the same victims in the same order.
    victims_b: list[int] = []
    victims_s: list[int] = []
    for line in range(2000, 2064):
        rb = batched.insert(line)
        rs = scalar.insert(line)
        victims_b.append(rb[0] if rb else -1)
        victims_s.append(rs[0] if rs else -1)
    assert victims_b == victims_s


def test_legacy_journal_records_residency_changes():
    """LegacySetAssocCache journals installs, victims, removes, flushes."""
    params = CacheParams("L2", 1 * KIB, 2, 64, 6.0, 2)  # 8 sets, 16 lines
    cache = LegacySetAssocCache(params, "j")
    cache.journal = set()
    cache.insert(5)
    assert 5 in cache.journal
    cache.journal.clear()
    # Fill set 5's two ways, then overflow it: the victim is journaled.
    cache.insert(5 + 8)
    cache.journal.clear()
    victim, _ = cache.insert(5 + 16)
    assert victim == 5
    assert {5, 5 + 16} <= cache.journal
    cache.journal.clear()
    cache.remove(5 + 8)  # returns the dirty flag, not presence
    assert 5 + 8 in cache.journal
    cache.remove(4040)  # absent line: no journal entry
    assert 4040 not in cache.journal
    cache.journal.clear()
    resident = set(cache.resident_lines())
    cache.flush()
    assert resident <= cache.journal
