"""The multi-process serving tier: ring, hash ring, routing, crash replay."""

from __future__ import annotations

import asyncio
import json
import os
import signal

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.serve import (
    AsyncServeClient,
    EventRing,
    HashRing,
    MappingServer,
    RoutedMappingServer,
    ServeConfig,
    SessionConfig,
    offline_reference,
    protocol,
    synthetic_fault_stream,
)
from repro.serve.protocol import MsgType, decode_events, decode_events_scalar


# ---------------------------------------------------------------------------
# shared-memory event ring
# ---------------------------------------------------------------------------
class TestEventRing:
    def _pair(self, capacity):
        ring = EventRing.create(capacity)
        peer = EventRing.attach(ring.name)
        return ring, peer

    def _teardown(self, ring, peer):
        peer.close()
        ring.close()
        ring.unlink()

    def test_roundtrip_across_attach(self):
        ring, peer = self._pair(1024)
        try:
            assert ring.try_push(b"hello", b" ", b"world")
            view = peer.pop()
            assert bytes(view) == b"hello world"
            del view
            peer.advance()
            assert peer.pop() is None
            assert ring.occupancy == 0
        finally:
            self._teardown(ring, peer)

    def test_fifo_order_preserved(self):
        ring, peer = self._pair(4096)
        try:
            payloads = [bytes([i]) * (i + 1) for i in range(20)]
            for p in payloads:
                assert ring.try_push(p)
            for p in payloads:
                view = peer.pop()
                assert bytes(view) == p
                del view
                peer.advance()
        finally:
            self._teardown(ring, peer)

    def test_full_ring_returns_false_then_accepts_after_drain(self):
        ring, peer = self._pair(64)
        try:
            assert ring.try_push(b"x" * 24)  # max record: 28-byte footprint
            assert ring.try_push(b"x" * 24)
            assert not ring.try_push(b"y" * 24)  # full, not an error
            view = peer.pop()
            del view
            peer.advance()
            assert ring.try_push(b"y" * 24)
        finally:
            self._teardown(ring, peer)

    def test_oversize_record_raises_protocol_error(self):
        ring, peer = self._pair(64)
        try:
            with pytest.raises(ProtocolError):
                ring.try_push(b"z" * 57)  # > capacity // 2 - 2 * 4
            assert ring.try_push(b"z" * ring.max_record_bytes())
        finally:
            self._teardown(ring, peer)

    def test_max_record_fits_at_any_tail_offset(self):
        """The record cap is position-independent (livelock regression).

        A payload in ``(capacity//2 - 8, capacity - 8]`` used to pass the
        cap yet could never fit once the tail drifted near the wrap point
        — try_push returned False forever on an otherwise-empty ring.  It
        must be rejected up front, and a cap-sized record must fit an
        empty ring regardless of where the tail sits.
        """
        ring, peer = self._pair(4096)
        try:
            with pytest.raises(ProtocolError):
                ring.try_push(b"z" * 3000)  # livelocked under the old cap
            cap = ring.max_record_bytes()
            assert cap == 4096 // 2 - 8
            for step in (1996, 1, 37, 500, cap):
                assert ring.try_push(b"s" * step)
                view = peer.pop()
                del view
                peer.advance()
                # ring now empty with the tail at an arbitrary offset
                assert ring.try_push(b"m" * cap)
                view = peer.pop()
                assert len(view) == cap
                del view
                peer.advance()
        finally:
            self._teardown(ring, peer)

    def test_no_torn_frames_at_wrap(self):
        """Records crossing the wrap point come back whole, in order."""
        ring, peer = self._pair(128)
        try:
            rng = np.random.default_rng(7)
            expected = []
            for i in range(500):
                payload = bytes([i % 251]) * int(rng.integers(1, 57))
                while not ring.try_push(payload):
                    view = peer.pop()
                    assert view is not None
                    assert bytes(view) == expected.pop(0)
                    del view
                    peer.advance()
                expected.append(payload)
            while expected:
                view = peer.pop()
                assert view is not None
                assert bytes(view) == expected.pop(0)
                del view
                peer.advance()
            assert peer.pop() is None
        finally:
            self._teardown(ring, peer)

    def test_wrap_marker_exact_boundary(self):
        """A record landing exactly at the end never splits."""
        ring, peer = self._pair(128)
        try:
            # 4-byte prefix + 28 payload = 32; four fill the ring exactly
            for _ in range(4):
                assert ring.try_push(b"a" * 28)
            view = peer.pop()
            del view
            peer.advance()
            # next record starts at offset 0 again via the implicit wrap
            assert ring.try_push(b"b" * 20)
            for _ in range(3):
                view = peer.pop()
                assert bytes(view) == b"a" * 28
                del view
                peer.advance()
            view = peer.pop()
            assert bytes(view) == b"b" * 20
            del view
            peer.advance()
        finally:
            self._teardown(ring, peer)

    def test_pop_before_advance_rejected(self):
        ring, peer = self._pair(128)
        try:
            ring.try_push(b"one")
            view = peer.pop()
            del view
            with pytest.raises(ConfigurationError):
                peer.pop()
            peer.advance()
        finally:
            self._teardown(ring, peer)

    def test_too_small_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            EventRing.create(8)
        with pytest.raises(ConfigurationError):
            EventRing.create(16)  # record cap would be zero

    def test_stats_shape(self):
        ring = EventRing.create(256)
        try:
            ring.try_push(b"abcd")
            stats = ring.stats()
            assert stats["capacity"] == 256
            assert stats["occupancy"] == 8  # 4-byte prefix + 4 payload
            assert 0 < stats["fill"] < 1
        finally:
            ring.close()
            ring.unlink()


# ---------------------------------------------------------------------------
# consistent hashing
# ---------------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_assignment(self):
        a, b = HashRing(), HashRing()
        for ring in (a, b):
            for wid in range(4):
                ring.add(wid)
        for tenant in ("alpha", "beta", "gamma", "t-%d" % 7):
            assert a.assign(tenant) == b.assign(tenant)

    def test_spread_over_workers(self):
        ring = HashRing()
        for wid in range(4):
            ring.add(wid)
        owners = {ring.assign(f"tenant-{i}") for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_removal_only_moves_the_retired_workers_tenants(self):
        ring = HashRing()
        for wid in range(4):
            ring.add(wid)
        tenants = [f"tenant-{i}" for i in range(300)]
        before = {t: ring.assign(t) for t in tenants}
        ring.remove(2)
        after = {t: ring.assign(t) for t in tenants}
        for t in tenants:
            if before[t] != 2:
                assert after[t] == before[t]
            else:
                assert after[t] != 2
        assert ring.workers == [0, 1, 3]

    def test_empty_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            HashRing().assign("t")
        with pytest.raises(ConfigurationError):
            HashRing(replicas=0)


# ---------------------------------------------------------------------------
# vectorised vs scalar EVENTS decode (bit parity)
# ---------------------------------------------------------------------------
class TestDecodeParity:
    @pytest.mark.parametrize("n", [0, 1, 7, 1024])
    def test_decoders_bit_identical(self, n, rng):
        vaddrs = rng.integers(-(2**62), 2**62, size=n, dtype=np.int64)
        body = protocol.events_body(5, 123456789, vaddrs)
        fast = decode_events(body)
        slow = decode_events_scalar(body)
        assert fast.tid == slow.tid == 5
        assert fast.now_ns == slow.now_ns == 123456789
        assert fast.vaddrs.dtype == slow.vaddrs.dtype == np.int64
        assert np.array_equal(fast.vaddrs, slow.vaddrs)
        assert np.array_equal(fast.vaddrs, vaddrs)

    def test_decoders_accept_memoryview(self):
        body = protocol.events_body(1, 2, np.array([4096, 8192], dtype=np.int64))
        fast = decode_events(memoryview(body))
        slow = decode_events_scalar(memoryview(body))
        assert np.array_equal(fast.vaddrs, slow.vaddrs)
        assert fast.raw is None  # only a bytes body is kept verbatim

    def test_raw_body_forwarded_verbatim(self):
        body = protocol.events_body(3, 9, np.array([12345], dtype=np.int64))
        batch = decode_events(body)
        assert batch.raw == body
        assert batch.body() == body


# ---------------------------------------------------------------------------
# routed server end-to-end
# ---------------------------------------------------------------------------
def _config(**overrides):
    defaults = dict(
        host="127.0.0.1",
        port=0,
        metrics_port=None,
        max_sessions=8,
        max_table_mb=64.0,
        shards=4,
        eval_every_events=4096,
        credit_window=65536,
        drain_grace_s=5.0,
        workers=2,
        ring_bytes=256 * 1024,
        worker_respawns=2,
        respawn_backoff_s=0.05,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


OVERRIDES = {"table_size": 10_000, "eval_every_events": 4096}


async def _stream_tenant(port, name, stream, n_threads=8, flush=True):
    client = await AsyncServeClient.connect(
        "127.0.0.1", port, tenant=name, n_threads=n_threads, config=OVERRIDES
    )
    for tid, now_ns, vaddrs in stream:
        await client.send_events(tid, now_ns, vaddrs)
    if flush:
        await client.flush()
    return await client.close()


class TestRoutedParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_digest_parity_with_offline_reference(self, machine, workers):
        """Any worker count serves the exact offline digests and mappings."""
        streams = {
            f"t{i}": list(synthetic_fault_stream(8, 4_000, seed=i)) for i in range(3)
        }

        async def scenario():
            async with RoutedMappingServer(
                _config(workers=workers), machine=machine
            ) as server:
                assert server.n_workers == workers
                return await asyncio.gather(
                    *(
                        _stream_tenant(server.port, name, stream)
                        for name, stream in streams.items()
                    )
                )

        summaries = asyncio.run(scenario())
        cfg = SessionConfig.from_overrides(
            SessionConfig(n_threads=8, shards=4, eval_every_events=4096), OVERRIDES
        )
        for (name, stream), summary in zip(streams.items(), summaries):
            ref = offline_reference(stream, cfg, machine, flush_after=[len(stream) - 1])
            assert summary["matrix_digest"] == ref.final_digest
            assert summary["mapping"] == ref.final_mapping
            assert summary["events"] == 8 * 4_000

    def test_routed_matches_single_process_server(self, machine):
        """Routed and single-process servers are bit-identical, per tenant."""
        streams = {
            f"t{i}": list(synthetic_fault_stream(8, 3_000, seed=10 + i))
            for i in range(2)
        }

        async def run(server):
            async with server:
                return await asyncio.gather(
                    *(
                        _stream_tenant(server.port, name, stream)
                        for name, stream in streams.items()
                    )
                )

        single = asyncio.run(run(MappingServer(_config(workers=1), machine=machine)))
        routed = asyncio.run(
            run(RoutedMappingServer(_config(workers=2), machine=machine))
        )
        for s, r in zip(single, routed):
            assert s["matrix_digest"] == r["matrix_digest"]
            assert s["mapping"] == r["mapping"]
            assert s["events"] == r["events"]
            assert s["evaluations"] == r["evaluations"]
            assert s["remaps"] == r["remaps"]

    def test_credit_window_enforced_through_router(self, machine):
        """A routed client overrunning its window gets the protocol error."""

        async def scenario():
            async with RoutedMappingServer(
                _config(credit_window=512), machine=machine
            ) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await protocol.write_frame(
                    writer,
                    protocol.encode(
                        MsgType.HELLO,
                        {
                            "tenant": "rude",
                            "n_threads": 4,
                            "version": protocol.PROTOCOL_VERSION,
                            "config": {"table_size": 4096},
                        },
                    ),
                )
                welcome = await protocol.read_frame(reader)
                assert welcome.type is MsgType.WELCOME
                # blast far past the window without reading CREDIT frames
                vaddrs = np.zeros(512, dtype=np.int64)
                for i in range(8):
                    await protocol.write_frame(
                        writer, protocol.encode_events(0, i, vaddrs)
                    )
                error = None
                while True:
                    frame = await protocol.read_frame(reader)
                    if frame is None:
                        break
                    if frame.type is MsgType.ERROR:
                        error = frame.payload
                        break
                writer.close()
                assert error is not None
                assert "credit window" in error["message"]

        asyncio.run(scenario())

    def test_small_window_backpressure_loses_nothing(self, machine):
        """A well-behaved client under a tiny window still lands every event."""

        async def scenario():
            async with RoutedMappingServer(
                _config(credit_window=512), machine=machine
            ) as server:
                client = await AsyncServeClient.connect(
                    "127.0.0.1",
                    server.port,
                    tenant="slow",
                    n_threads=4,
                    config={"table_size": 4096},
                )
                for tid, now_ns, vaddrs in synthetic_fault_stream(
                    4, 2_000, batch_events=256, seed=7
                ):
                    await client.send_events(tid, now_ns, vaddrs)
                summary = await client.close()
                assert summary["events"] == 8_000
                assert server.events_total == 8_000

        asyncio.run(scenario())

    def test_oversize_ring_frame_rejected_with_error_frame(self, machine):
        """A frame too large for the ring draws ERROR, not a deadlock."""

        async def scenario():
            async with RoutedMappingServer(
                _config(ring_bytes=4096, credit_window=1 << 20), machine=machine
            ) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await protocol.write_frame(
                    writer,
                    protocol.encode(
                        MsgType.HELLO,
                        {
                            "tenant": "big",
                            "n_threads": 4,
                            "version": protocol.PROTOCOL_VERSION,
                            "config": {"table_size": 4096},
                        },
                    ),
                )
                welcome = await protocol.read_frame(reader)
                assert welcome.type is MsgType.WELCOME
                await protocol.write_frame(
                    writer,
                    protocol.encode_events(0, 0, np.zeros(1024, dtype=np.int64)),
                )
                frame = await protocol.read_frame(reader)
                writer.close()
                assert frame.type is MsgType.ERROR
                assert "record cap" in frame.payload["message"]

        asyncio.run(scenario())

    def test_metrics_expose_per_worker_gauges(self, machine):
        """The exposition carries per-worker routed/occupancy/fold series."""

        async def scenario():
            async with RoutedMappingServer(_config(), machine=machine) as server:
                client = await AsyncServeClient.connect(
                    "127.0.0.1",
                    server.port,
                    tenant="m",
                    n_threads=4,
                    config={"table_size": 4096},
                )
                for tid, now_ns, vaddrs in synthetic_fault_stream(4, 1_000, seed=9):
                    await client.send_events(tid, now_ns, vaddrs)
                await client.flush()
                text = await client.metrics()
                await client.close()
                return text

        text = asyncio.run(scenario())
        assert 'serve_worker_events_total{worker="' in text
        assert 'serve_worker_batches_total{worker="' in text
        assert 'serve_worker_ring_occupancy_bytes{worker="' in text
        assert 'serve_worker_fold_seconds_bucket{' in text
        assert 'serve_worker_sessions{worker="' in text
        # exactly one worker ingested this tenant's 4000 events
        totals = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("serve_worker_events_total{")
        ]
        assert sum(totals) == 4000

    def test_routed_drain_trace_shape(self, machine, tmp_path):
        """Routed traces book-end with serve_start/serve_end, workers inside."""
        from repro.obs.recorder import JsonlRecorder

        path = tmp_path / "serve.jsonl"

        async def scenario():
            recorder = JsonlRecorder(path)
            server = RoutedMappingServer(
                _config(drain_grace_s=0.5), machine=machine, recorder=recorder
            )
            await server.start()
            client = await AsyncServeClient.connect(
                "127.0.0.1",
                server.port,
                tenant="open",
                n_threads=8,
                config=OVERRIDES,
            )
            for tid, now_ns, vaddrs in synthetic_fault_stream(8, 2_000, seed=11):
                await client.send_events(tid, now_ns, vaddrs)
            await server.drain("test-drain")
            await client.close()

        asyncio.run(scenario())
        events = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [e["type"] for e in events]
        assert kinds[0] == "serve_start"
        assert kinds[-1] == "serve_end"
        assert kinds.count("serve_worker_start") == 2
        starts = [e for e in events if e["type"] == "serve_start"]
        assert starts[0]["workers"] == 2
        ends = [e for e in events if e["type"] == "serve_session_end"]
        assert len(ends) == 1 and ends[0]["reason"] == "drain"
        assert ends[0]["events"] == 16_000
        assert ends[0]["matrix_digest"]
        # per-session evaluation events were forwarded from the worker
        assert any(e["type"] == "serve_evaluation" for e in events)


# ---------------------------------------------------------------------------
# crash recovery: kill a worker mid-stream, digests must not change
# ---------------------------------------------------------------------------
class _Crasher:
    """Kills the worker hosting the first live session, once."""

    def __init__(self, server):
        self.server = server
        self.killed_pid = None

    def kill_hosting_worker(self):
        sess = next(iter(self.server._remote_sessions.values()))
        handle = self.server._workers[sess.worker_id]
        self.killed_pid = handle.sup.proc.pid
        os.kill(self.killed_pid, signal.SIGKILL)


class TestCrashRecovery:
    def _reference(self, machine, stream):
        cfg = SessionConfig.from_overrides(
            SessionConfig(n_threads=8, shards=4, eval_every_events=4096), OVERRIDES
        )
        return offline_reference(stream, cfg, machine, flush_after=[len(stream) - 1])

    def _crash_run(self, machine, stream, respawns, workers=2):
        async def scenario():
            async with RoutedMappingServer(
                _config(workers=workers, worker_respawns=respawns), machine=machine
            ) as server:
                client = await AsyncServeClient.connect(
                    "127.0.0.1",
                    server.port,
                    tenant="victim",
                    n_threads=8,
                    config=OVERRIDES,
                )
                half = len(stream) // 2
                for tid, now_ns, vaddrs in stream[:half]:
                    await client.send_events(tid, now_ns, vaddrs)
                _Crasher(server).kill_hosting_worker()
                for tid, now_ns, vaddrs in stream[half:]:
                    await client.send_events(tid, now_ns, vaddrs)
                await client.flush()
                summary = await client.close()
                return summary, server.workers_crashed, server.tenants_migrated

        return asyncio.run(scenario())

    def test_respawn_replay_is_bit_identical(self, machine):
        """SIGKILL mid-stream, respawn + journal replay: same digest."""
        stream = list(synthetic_fault_stream(8, 4_000, seed=42))
        ref = self._reference(machine, stream)
        summary, crashed, migrated = self._crash_run(machine, stream, respawns=2)
        assert crashed == 1 and migrated == 1
        assert summary["matrix_digest"] == ref.final_digest
        assert summary["mapping"] == ref.final_mapping
        assert summary["events"] == 8 * 4_000

    def test_multi_tenant_crash_replay_with_concurrent_pumps(self, machine):
        """All tenants on a crashed worker recover while streaming live.

        Regression for the replay race: while one session's journal
        replays into the respawned worker, live pumps for the other
        not-yet-replayed sessions must not forward stale entries (which
        the worker would orphan-ack, crediting clients for unprocessed
        events and making the replay suppress genuine acks — silently
        dropping MAPPING updates).  Every tenant's digest must match the
        offline reference exactly.
        """
        streams = {
            f"t{i}": list(synthetic_fault_stream(8, 3_000, seed=50 + i))
            for i in range(3)
        }
        half = {name: len(s) // 2 for name, s in streams.items()}

        async def scenario():
            async with RoutedMappingServer(
                _config(workers=1, worker_respawns=2), machine=machine
            ) as server:
                clients = {
                    name: await AsyncServeClient.connect(
                        "127.0.0.1",
                        server.port,
                        tenant=name,
                        n_threads=8,
                        config=OVERRIDES,
                    )
                    for name in streams
                }
                for name, client in clients.items():
                    for tid, now_ns, vaddrs in streams[name][: half[name]]:
                        await client.send_events(tid, now_ns, vaddrs)
                _Crasher(server).kill_hosting_worker()

                async def finish(name, client):
                    for tid, now_ns, vaddrs in streams[name][half[name] :]:
                        await client.send_events(tid, now_ns, vaddrs)
                    await client.flush()
                    return await client.close()

                summaries = await asyncio.gather(
                    *(finish(name, client) for name, client in clients.items())
                )
                return summaries, server.workers_crashed, server.tenants_migrated

        summaries, crashed, migrated = asyncio.run(scenario())
        assert crashed == 1 and migrated == 3
        for (name, stream), summary in zip(streams.items(), summaries):
            ref = self._reference(machine, stream)
            assert summary["matrix_digest"] == ref.final_digest
            assert summary["mapping"] == ref.final_mapping
            assert summary["events"] == 8 * 3_000

    def test_exhausted_budget_migrates_to_surviving_worker(self, machine):
        """With zero respawns the tenant replays into the next worker."""
        stream = list(synthetic_fault_stream(8, 4_000, seed=43))
        ref = self._reference(machine, stream)
        summary, crashed, migrated = self._crash_run(machine, stream, respawns=0)
        assert crashed == 1 and migrated == 1
        assert summary["matrix_digest"] == ref.final_digest
        assert summary["mapping"] == ref.final_mapping

    def test_crash_events_fold_into_report(self, machine, tmp_path):
        """The obs report reflects spawns, crashes and migrations."""
        from repro.obs.recorder import JsonlRecorder
        from repro.obs.report import reconstruct_serves

        path = tmp_path / "serve.jsonl"
        stream = list(synthetic_fault_stream(8, 3_000, seed=44))

        async def scenario():
            recorder = JsonlRecorder(path)
            async with RoutedMappingServer(
                _config(), machine=machine, recorder=recorder
            ) as server:
                client = await AsyncServeClient.connect(
                    "127.0.0.1",
                    server.port,
                    tenant="victim",
                    n_threads=8,
                    config=OVERRIDES,
                )
                half = len(stream) // 2
                for tid, now_ns, vaddrs in stream[:half]:
                    await client.send_events(tid, now_ns, vaddrs)
                _Crasher(server).kill_hosting_worker()
                for tid, now_ns, vaddrs in stream[half:]:
                    await client.send_events(tid, now_ns, vaddrs)
                await client.close()

        asyncio.run(scenario())
        events = [json.loads(line) for line in path.read_text().splitlines()]
        reports = reconstruct_serves(events)
        assert len(reports) == 1
        report = reports[0]
        assert report.workers == 2
        assert report.worker_crashes == 1
        assert report.migrations == 1
        assert report.worker_spawns == 3  # two initial + one respawn
        migs = [e for e in events if e["type"] == "serve_tenant_migrated"]
        assert len(migs) == 1
        assert migs[0]["reason"] == "respawn"
        assert migs[0]["replayed_batches"] > 0
