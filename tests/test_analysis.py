"""Tests for heatmaps and paper-style reports."""

import numpy as np

from repro.analysis.heatmap import heatmap_ascii, heatmap_pgm, save_matrix_csv
from repro.analysis.report import POLICY_ORDER, figure_series, format_figure_table, format_table
from repro.core.commmatrix import CommunicationMatrix
from repro.engine.runner import MetricStats, ReplicatedResult
from repro.workloads.patterns import neighbor_pairs_pattern


class TestHeatmapAscii:
    def test_dark_cells_for_heavy_pairs(self):
        m = CommunicationMatrix(4, neighbor_pairs_pattern(4, 10))
        art = heatmap_ascii(m)
        rows = art.splitlines()
        assert rows[0][2] == "@"  # cell (0,1) is the maximum -> darkest
        assert rows[0][0] == " "  # diagonal empty

    def test_title_included(self):
        art = heatmap_ascii(np.zeros((2, 2)), title="Fig 6a")
        assert art.splitlines()[0] == "Fig 6a"

    def test_accepts_raw_arrays(self):
        assert heatmap_ascii(np.eye(3))


class TestHeatmapPgm:
    def test_writes_valid_pgm(self, tmp_path):
        m = CommunicationMatrix(4, neighbor_pairs_pattern(4))
        path = heatmap_pgm(m, tmp_path / "m.pgm", cell=2)
        data = path.read_bytes()
        assert data.startswith(b"P5\n8 8\n255\n")
        assert len(data) - len(b"P5\n8 8\n255\n") == 64

    def test_max_cell_is_black(self, tmp_path):
        m = np.zeros((2, 2))
        m[0, 1] = m[1, 0] = 1.0
        path = heatmap_pgm(m, tmp_path / "m.pgm", cell=1)
        pixels = path.read_bytes()[-4:]
        assert pixels[1] == 0 and pixels[0] == 255  # comm black, diagonal white

    def test_csv_export(self, tmp_path):
        path = save_matrix_csv(np.eye(3), tmp_path / "m.csv")
        loaded = np.loadtxt(path, delimiter=",")
        assert np.allclose(loaded, np.eye(3))


def fake_result(workload, policy, time):
    return ReplicatedResult(
        workload=workload,
        policy=policy,
        metrics={"exec_time_s": MetricStats(mean=time, ci95=0.0, values=(time,))},
    )


class TestReport:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 10000.0]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_figure_series_normalises(self):
        results = {
            "BT": {
                "os": fake_result("BT", "os", 2.0),
                "spcd": fake_result("BT", "spcd", 1.0),
            }
        }
        series = figure_series(results, "exec_time_s")
        assert series["BT"]["os"] == 1.0
        assert series["BT"]["spcd"] == 0.5

    def test_format_figure_table_contains_policies(self):
        series = {"BT": {"os": 1.0, "random": 0.9, "oracle": 0.8, "spcd": 0.85}}
        text = format_figure_table(series, title="Figure 8")
        assert "Figure 8" in text and "BT" in text
        for p in POLICY_ORDER:
            assert p.upper() in text

    def test_format_figure_table_handles_missing_policy(self):
        series = {"BT": {"os": 1.0}}
        text = format_figure_table(series, title="t")
        assert "nan" in text
