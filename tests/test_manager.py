"""Tests for the SPCD manager (detection + filter + mapping orchestration)."""

import numpy as np
import pytest

from repro.core.manager import SpcdConfig, SpcdManager
from repro.kernelsim.kthread import TimerWheel
from repro.kernelsim.scheduler import PinnedScheduler
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.units import MSEC, PAGE_SIZE


@pytest.fixture
def env(small_machine, rng):
    space = AddressSpace(1024)
    space.mmap("shared", 8 * PAGE_SIZE)
    pipeline = FaultPipeline(
        space, FrameAllocator(2, 4000), node_of_pu=small_machine.numa_node_of
    )
    sched = PinnedScheduler(small_machine, 8, list(range(8)))
    sched.start()
    wheel = TimerWheel()
    return space, pipeline, sched, wheel, rng


def feed_pair_communication(space, pipeline, pairs, reps=40, start_ns=0):
    """Simulate heavy page sharing between given thread pairs."""
    table = space.page_table
    base = space.region("shared").base
    now = start_ns
    for rep in range(reps):
        for idx, (a, b) in enumerate(pairs):
            addr = base + idx * PAGE_SIZE
            vpn = addr // PAGE_SIZE
            for tid in (a, b):
                if table.is_present(vpn):
                    table.clear_present(vpn)
                pipeline.handle_fault(tid, tid % 8, addr, is_write=False, now_ns=now)
                now += 10_000
    return now


class TestEvaluate:
    def test_no_mapping_without_evidence(self, env):
        space, pipeline, sched, wheel, rng = env
        mgr = SpcdManager(sched.machine, 8, pipeline, sched, rng, timer_wheel=wheel)
        assert not mgr.evaluate(50 * MSEC)
        assert mgr.migration_count == 0

    def test_maps_once_evidence_arrives(self, env):
        space, pipeline, sched, wheel, rng = env
        cfg = SpcdConfig(filter_min_events=10)
        mgr = SpcdManager(sched.machine, 8, pipeline, sched, rng, config=cfg)
        feed_pair_communication(space, pipeline, [(0, 1), (2, 3), (4, 5), (6, 7)])
        assert mgr.evaluate(1_000 * MSEC)
        assert mgr.migration_count == 1
        placement = sched.placement()
        for a, b in [(0, 1), (2, 3), (4, 5), (6, 7)]:
            assert sched.machine.core_of(int(placement[a])) == sched.machine.core_of(
                int(placement[b])
            )

    def test_stable_pattern_does_not_remigrate(self, env):
        space, pipeline, sched, wheel, rng = env
        cfg = SpcdConfig(filter_min_events=10, remap_cooldown_ns=0)
        mgr = SpcdManager(sched.machine, 8, pipeline, sched, rng, config=cfg)
        now = feed_pair_communication(space, pipeline, [(0, 1), (2, 3), (4, 5), (6, 7)])
        mgr.evaluate(now)
        now = feed_pair_communication(
            space, pipeline, [(0, 1), (2, 3), (4, 5), (6, 7)], start_ns=now
        )
        assert not mgr.evaluate(now)
        assert mgr.migration_count == 1

    def test_pattern_change_remaps(self, env):
        space, pipeline, sched, wheel, rng = env
        cfg = SpcdConfig(
            filter_min_events=10, remap_cooldown_ns=0, matrix_decay=0.3
        )
        mgr = SpcdManager(sched.machine, 8, pipeline, sched, rng, config=cfg)
        now = feed_pair_communication(space, pipeline, [(0, 1), (2, 3), (4, 5), (6, 7)])
        mgr.evaluate(now)
        for _ in range(6):  # decay out the old pattern with fresh evidence
            # Jump past the temporal window so stale sharer timestamps from
            # the previous pattern age out (Sec. III-C2).
            now = feed_pair_communication(
                space,
                pipeline,
                [(0, 4), (1, 5), (2, 6), (3, 7)],
                start_ns=now + 400 * MSEC,
                reps=20,
            )
            if mgr.evaluate(now):
                break
        assert mgr.migration_count == 2
        placement = sched.placement()
        for a, b in [(0, 4), (1, 5), (2, 6), (3, 7)]:
            assert sched.machine.core_of(int(placement[a])) == sched.machine.core_of(
                int(placement[b])
            )

    def test_cooldown_blocks_consecutive_migrations(self, env):
        space, pipeline, sched, wheel, rng = env
        cfg = SpcdConfig(filter_min_events=10, remap_cooldown_ns=10**12, matrix_decay=0.3)
        mgr = SpcdManager(sched.machine, 8, pipeline, sched, rng, config=cfg)
        now = feed_pair_communication(space, pipeline, [(0, 1), (2, 3), (4, 5), (6, 7)])
        mgr.evaluate(now)
        now = feed_pair_communication(
            space, pipeline, [(0, 4), (1, 5), (2, 6), (3, 7)], start_ns=now
        )
        assert not mgr.evaluate(now)
        assert mgr.migration_count == 1

    def test_improvement_gate_blocks_lateral_moves(self, env):
        space, pipeline, sched, wheel, rng = env
        cfg = SpcdConfig(
            filter_min_events=4,
            remap_cooldown_ns=0,
            min_improvement=0.5,
            matrix_decay=1.0,
        )
        mgr = SpcdManager(sched.machine, 8, pipeline, sched, rng, config=cfg)
        now = feed_pair_communication(space, pipeline, [(0, 1), (2, 3), (4, 5), (6, 7)])
        mgr.evaluate(now)  # now optimal
        # force the filter to re-trigger by resetting its snapshot
        mgr.filter._partners = np.full(8, -1)
        assert not mgr.evaluate(now + 1)  # new mapping cannot be 2x better
        assert mgr.migration_count == 1


class TestTimers:
    def test_kthreads_registered(self, env):
        space, pipeline, sched, wheel, rng = env
        SpcdManager(sched.machine, 8, pipeline, sched, rng, timer_wheel=wheel)
        names = [kt.name for kt in wheel.threads()]
        assert names == ["spcd-injector", "spcd-evaluate"]

    def test_injector_period_is_10ms(self, env):
        """Paper Sec. III-B2: the kernel thread wakes every 10 ms."""
        space, pipeline, sched, wheel, rng = env
        SpcdManager(sched.machine, 8, pipeline, sched, rng, timer_wheel=wheel)
        injector_kt = wheel.threads()[0]
        assert injector_kt.period_ns == 10 * MSEC


class TestOverheadAccounting:
    def test_detection_time_includes_hook_and_injection(self, env):
        space, pipeline, sched, wheel, rng = env
        mgr = SpcdManager(sched.machine, 8, pipeline, sched, rng)
        feed_pair_communication(space, pipeline, [(0, 1)], reps=5)
        mgr.injector.wake(0)
        expected = pipeline.hook_time_ns + mgr.injector.inject_time_ns
        assert mgr.detection_time_ns() == expected
        assert expected > 0

    def test_mapping_time_counts_calls_and_moves(self, env):
        space, pipeline, sched, wheel, rng = env
        cfg = SpcdConfig(filter_min_events=5)
        mgr = SpcdManager(sched.machine, 8, pipeline, sched, rng, config=cfg)
        now = feed_pair_communication(space, pipeline, [(0, 1), (2, 3), (4, 5), (6, 7)])
        mgr.evaluate(now)
        assert mgr.mapping_time_ns() > 0
        summary = mgr.overhead_summary(10**9)
        assert summary["migrations"] == 1
        assert summary["mapping_pct"] > 0

    def test_mapping_history(self, env):
        space, pipeline, sched, wheel, rng = env
        cfg = SpcdConfig(filter_min_events=5)
        mgr = SpcdManager(sched.machine, 8, pipeline, sched, rng, config=cfg)
        now = feed_pair_communication(space, pipeline, [(0, 1), (2, 3), (4, 5), (6, 7)])
        mgr.evaluate(now)
        history = mgr.mapping_history
        assert len(history) == 1
        assert history[0][0] == now
