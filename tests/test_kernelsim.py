"""Tests for the OS substrate: clock, tasks, kthreads, migration."""

import numpy as np
import pytest

from repro.errors import SchedulerError, SimulationError
from repro.kernelsim.clock import VirtualClock
from repro.kernelsim.kthread import KernelThread, TimerWheel
from repro.kernelsim.migration import MigrationEngine
from repro.kernelsim.scheduler import PinnedScheduler
from repro.kernelsim.task import Task, TaskState
from repro.mem.tlb import TlbArray


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0

    def test_advance(self):
        c = VirtualClock()
        c.advance(100.7)
        assert c.now_ns == 100

    def test_advance_to(self):
        c = VirtualClock(50)
        c.advance_to(80)
        assert c.now_ns == 80

    def test_rejects_backwards(self):
        c = VirtualClock(50)
        with pytest.raises(SimulationError):
            c.advance(-1)
        with pytest.raises(SimulationError):
            c.advance_to(10)


class TestTask:
    def test_move_records_history(self):
        t = Task(tid=0, pu=3)
        t.move_to(5, now_ns=100)
        assert t.pu == 5 and t.migrations == 1
        assert t.placement_history == [(100, 5)]

    def test_move_to_same_pu_is_free(self):
        t = Task(tid=0, pu=3)
        t.move_to(3, now_ns=100)
        assert t.migrations == 0

    def test_affinity_enforced(self):
        t = Task(tid=0, pu=3)
        t.set_affinity(frozenset({3, 4}))
        assert t.can_run_on(4) and not t.can_run_on(5)
        with pytest.raises(SchedulerError):
            t.move_to(5, now_ns=0)

    def test_empty_affinity_rejected(self):
        with pytest.raises(SchedulerError):
            Task(tid=0, pu=0).set_affinity(frozenset())

    def test_initial_state_runnable(self):
        assert Task(tid=0, pu=0).state is TaskState.RUNNABLE


class TestKernelThread:
    def test_fires_once_per_period(self):
        calls = []
        kt = KernelThread("t", 10, calls.append)
        kt.fire_due(25)
        assert calls == [10, 20]
        assert kt.fire_count == 2

    def test_no_fire_before_period(self):
        calls = []
        KernelThread("t", 10, calls.append).fire_due(9)
        assert calls == []

    def test_catchup_limit_skips_missed_wakes(self):
        calls = []
        kt = KernelThread("t", 1, calls.append, )
        kt.fire_due(100, max_catchup=3)
        assert len(calls) == 3
        assert kt.next_fire_ns == 101  # remaining periods skipped, not replayed

    def test_disabled_thread_does_not_fire(self):
        calls = []
        kt = KernelThread("t", 10, calls.append)
        kt.enabled = False
        kt.fire_due(100)
        assert calls == []

    def test_rejects_zero_period(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            KernelThread("t", 0, lambda now: None)


class TestTimerWheel:
    def test_multiple_threads_fire_independently(self):
        wheel = TimerWheel()
        a, b = [], []
        wheel.register("a", 10, a.append)
        wheel.register("b", 25, b.append)
        wheel.tick(50)
        assert a == [10, 20, 30, 40, 50]
        assert b == [25, 50]

    def test_tick_returns_total_invocations(self):
        wheel = TimerWheel()
        wheel.register("a", 10, lambda now: None)
        assert wheel.tick(30) == 3
        assert wheel.tick(30) == 0  # nothing new


class TestPinnedScheduler:
    def test_initial_placement(self, small_machine):
        sched = PinnedScheduler(small_machine, 4, [3, 2, 1, 0])
        sched.start()
        assert sched.placement().tolist() == [3, 2, 1, 0]

    def test_mapping_dict_accepted(self, small_machine):
        sched = PinnedScheduler(small_machine, 2, {0: 5, 1: 6})
        sched.start()
        assert sched.pu_of(1) == 6

    def test_rejects_conflicting_mapping(self, small_machine):
        with pytest.raises(SchedulerError):
            PinnedScheduler(small_machine, 2, [1, 1])

    def test_rejects_out_of_range_pu(self, small_machine):
        with pytest.raises(SchedulerError):
            PinnedScheduler(small_machine, 1, [99])

    def test_repin_returns_only_actual_moves(self, small_machine):
        sched = PinnedScheduler(small_machine, 4, [0, 1, 2, 3])
        sched.start()
        moves = sched.repin([0, 1, 3, 2], now_ns=10)
        assert sorted(moves) == [(2, 3), (3, 2)]
        assert sched.total_migrations() == 2

    def test_on_quantum_never_moves(self, small_machine, rng):
        sched = PinnedScheduler(small_machine, 4, [0, 1, 2, 3])
        sched.start()
        assert sched.on_quantum(10**9, rng) == []


class TestCfsLikeScheduler:
    def _make(self, machine, rng, **kw):
        from repro.kernelsim.scheduler import CfsLikeScheduler

        sched = CfsLikeScheduler(machine, machine.n_pus, rng, **kw)
        sched.start()
        return sched

    def test_one_thread_per_pu(self, small_machine, rng):
        sched = self._make(small_machine, rng)
        placement = sched.placement()
        assert sorted(placement.tolist()) == list(range(small_machine.n_pus))

    def test_shuffle_off_is_identity(self, small_machine, rng):
        sched = self._make(small_machine, rng, shuffle_initial=False)
        assert sched.placement().tolist() == list(range(small_machine.n_pus))

    def test_rebalance_swaps_pairs(self, small_machine, rng):
        sched = self._make(
            small_machine, rng, rebalance_period_ns=10, migration_rate=1.0
        )
        moves = sched.on_quantum(10, rng)
        assert len(moves) == 2
        # Still one thread per PU after the swap.
        assert sorted(sched.placement().tolist()) == list(range(small_machine.n_pus))

    def test_rebalance_respects_period(self, small_machine, rng):
        sched = self._make(
            small_machine, rng, rebalance_period_ns=1000, migration_rate=1.0
        )
        assert sched.on_quantum(10, rng) == []

    def test_oversubscription_wraps(self, small_machine, rng):
        from repro.kernelsim.scheduler import CfsLikeScheduler

        sched = CfsLikeScheduler(small_machine, 2 * small_machine.n_pus, rng)
        sched.start()
        counts = np.bincount(sched.placement(), minlength=small_machine.n_pus)
        assert (counts == 2).all()


class TestMigrationEngine:
    def test_apply_mapping_counts_and_costs(self, small_machine):
        sched = PinnedScheduler(small_machine, 4, [0, 1, 2, 3])
        sched.start()
        tlbs = TlbArray(small_machine.n_pus)
        tlbs[2].insert(7, 70)
        engine = MigrationEngine(sched, tlbs, cost_per_move_ns=100.0)
        moved = engine.apply_mapping([0, 1, 3, 2], now_ns=5)
        assert moved == 2
        assert engine.moves == 2 and engine.migration_events == 1
        assert engine.cost_ns == 200.0
        assert 7 not in tlbs[2]  # destination TLB flushed

    def test_noop_mapping_not_an_event(self, small_machine):
        sched = PinnedScheduler(small_machine, 4, [0, 1, 2, 3])
        sched.start()
        engine = MigrationEngine(sched)
        assert engine.apply_mapping([0, 1, 2, 3], now_ns=5) == 0
        assert engine.migration_events == 0
