"""Failure-injection and degraded-mode tests.

SPCD must degrade gracefully, not crash, when its resources are starved:
tiny hash tables (constant collisions), exhausted NUMA nodes, pathological
cache pressure, and extreme injection settings.
"""

import pytest

from repro.core.manager import SpcdConfig
from repro.core.spcd import SpcdDetector
from repro.engine.simulator import EngineConfig, Simulator
from repro.machine.cache_params import CacheParams
from repro.machine.topology import build_machine
from repro.mem.addresspace import AddressSpace
from repro.mem.fault import FaultPipeline
from repro.mem.physmem import FrameAllocator
from repro.units import KIB, PAGE_SIZE
from repro.workloads.npb import make_npb


class TestHashCollisionStorm:
    def test_one_slot_table_still_detects_some_communication(self):
        """Overwrite-on-collision loses history but must never corrupt."""
        space = AddressSpace(256)
        space.mmap("d", 32 * PAGE_SIZE)
        pipeline = FaultPipeline(space, FrameAllocator(1, 500), node_of_pu=lambda p: 0)
        det = SpcdDetector(4, table_size=1, pipeline=pipeline)
        table = space.page_table
        base = space.region("d").base
        # Two threads hammer the same page: entry survives (same region).
        for i in range(10):
            vpn = base // PAGE_SIZE
            if table.is_present(vpn):
                table.clear_present(vpn)
            pipeline.handle_fault(i % 2, 0, base, is_write=False, now_ns=i)
        assert det.matrix.matrix[0, 1] > 0

    def test_collision_storm_degrades_but_does_not_crash(self):
        space = AddressSpace(512)
        space.mmap("d", 200 * PAGE_SIZE)
        pipeline = FaultPipeline(space, FrameAllocator(1, 500), node_of_pu=lambda p: 0)
        det = SpcdDetector(4, table_size=3, pipeline=pipeline)
        region = space.region("d")
        table = space.page_table
        for i, vpn in enumerate(region.vpns()):
            if table.is_present(int(vpn)):
                table.clear_present(int(vpn))
            pipeline.handle_fault(i % 4, 0, int(vpn) * PAGE_SIZE, is_write=False, now_ns=i)
        assert det.table.collisions > 100
        assert len(det.table) <= 3

    def test_tiny_table_reduces_detection_vs_large(self, rng):
        """Accuracy falls with table size — the trade-off of Sec. III-B1."""
        def events_with(table_size):
            space = AddressSpace(512)
            space.mmap("d", 64 * PAGE_SIZE)
            pipeline = FaultPipeline(space, FrameAllocator(1, 500), node_of_pu=lambda p: 0)
            det = SpcdDetector(2, table_size=table_size, pipeline=pipeline)
            table = space.page_table
            order = rng.permutation(128)
            for i in order:
                # pages 0..63, each touched once by thread 0 and once by 1
                vpn = space.region("d").first_vpn + int(i) % 64
                tid = (int(i) // 64) % 2
                if table.is_present(vpn):
                    table.clear_present(vpn)
                pipeline.handle_fault(tid, 0, vpn * PAGE_SIZE, is_write=False, now_ns=int(i))
            return det.stats.comm_events

        assert events_with(2) < events_with(10_000)


class TestMemoryPressure:
    def test_node_exhaustion_falls_back(self):
        """First-touch falls back to the other node instead of failing."""
        space = AddressSpace(64)
        space.mmap("d", 8 * PAGE_SIZE)
        frames = FrameAllocator(2, 4)  # node 0 holds only 4 frames
        pipeline = FaultPipeline(space, frames, node_of_pu=lambda p: 0)
        homes = set()
        for vpn in space.region("d").vpns():
            info = pipeline.handle_fault(0, 0, int(vpn) * PAGE_SIZE, is_write=False, now_ns=0)
            homes.add(info.home_node)
        assert homes == {0, 1}


class TestPathologicalCaches:
    def test_simulation_survives_minuscule_caches(self):
        tiny = build_machine(
            2, 2, 2,
            l1=CacheParams("L1", 1 * KIB, 1, 64, 2.0, 1),
            l2=CacheParams("L2", 1 * KIB, 1, 64, 6.0, 2),
            l3=CacheParams("L3", 2 * KIB, 2, 64, 15.0, 3),
        )
        wl = make_npb("SP", n_threads=8)
        sim = Simulator(wl, "spcd", machine=tiny, seed=1,
                        config=EngineConfig(batch_size=64, steps=15))
        res = sim.run()
        assert res.exec_time_s > 0
        assert sim.hierarchy.check_invariants() == []
        # tiny inclusive L3 must be back-invalidating constantly
        assert res.stats.back_invalidations > 0


class TestExtremeInjection:
    def test_injector_clearing_everything_every_wake(self):
        """max-rate injection: correctness preserved, overhead explodes."""
        cfg = EngineConfig(batch_size=96, steps=25)
        scfg = SpcdConfig(injector_floor=4096, injector_max_per_wake=4096)
        sim = Simulator(make_npb("BT"), "spcd", seed=1, config=cfg, spcd_config=scfg)
        res = sim.run()
        assert res.injected_faults > 0
        assert sim.address_space.page_table.consistency_ok()

    def test_zero_steps_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            EngineConfig(steps=0)

    def test_filter_disabled_still_converges(self):
        cfg = EngineConfig(batch_size=128, steps=50)
        scfg = SpcdConfig(filter_enabled=False, filter_min_events=32)
        sim = Simulator(make_npb("SP"), "spcd", seed=1, config=cfg, spcd_config=scfg)
        res = sim.run()
        assert sim.manager.overheads.mapper_calls >= 1
        assert res.migrations >= 1
