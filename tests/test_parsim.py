"""The core-sharded parallel simulator must replay bit-identically.

Set-stripe sharding (``REPRO_SIM_SHARDS``) partitions cache lines across
worker processes by ``line & (S - 1)``.  Because the stripe bits are the
low bits of the set index at every cache level, stripes never share a
cache set, a directory entry, or an LRU ordering — so the merged shard
counters must equal the single-process counters bit for bit, for any
shard count, in both MESI drain modes, and even across a mid-run worker
crash (the journal replay rebuilds the dead shard's state exactly).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cachesim.stats import CacheStats
from repro.engine.parsim import ShardPool, max_shards
from repro.engine.runner import run_single
from repro.engine.settings import RunSettings
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import ConfigurationError
from repro.machine.cache_params import CacheParams
from repro.machine.topology import build_machine
from repro.units import KIB
from repro.workloads.npb import make_npb
from repro.workloads.producer_consumer import ProducerConsumerWorkload


def small_machine():
    return build_machine(
        2, 2, 2,
        l1=CacheParams("L1", 2 * KIB, 2, 64, 2.0, 1),
        l2=CacheParams("L2", 8 * KIB, 2, 64, 6.0, 2),
        l3=CacheParams("L3", 16 * KIB, 4, 64, 15.0, 3),
    )


def assert_results_equal(a, b) -> None:
    for f in dataclasses.fields(CacheStats):
        assert getattr(a.stats, f.name) == getattr(b.stats, f.name), f.name
    for metric in (
        "exec_time_s",
        "l2_mpki",
        "l3_mpki",
        "c2c_transactions",
        "invalidations",
        "migrations",
        "first_touch_faults",
        "injected_faults",
    ):
        assert a.metric(metric) == b.metric(metric), metric


@pytest.mark.parametrize("slow_mesi", [False, True], ids=["batched", "scalar_mesi"])
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_run_bit_identical(shards, slow_mesi):
    """REPRO_SIM_SHARDS x REPRO_SLOW_MESI: all cells equal the serial run."""
    cfg = EngineConfig(steps=12, batch_size=96)
    serial = run_single(
        ProducerConsumerWorkload,
        "spcd",
        seed=11,
        config=cfg,
        settings=RunSettings(slow_mesi=slow_mesi),
    )
    sharded = run_single(
        ProducerConsumerWorkload,
        "spcd",
        seed=11,
        config=cfg,
        settings=RunSettings(slow_mesi=slow_mesi, sim_shards=shards),
    )
    assert_results_equal(serial, sharded)


def test_sharded_npb_parity():
    """An NPB pattern (phases, rng streams) survives sharding unchanged."""
    cfg = EngineConfig(steps=10, batch_size=128)
    serial = run_single(
        lambda: make_npb("CG"), "spcd", seed=5, config=cfg, settings=RunSettings()
    )
    sharded = run_single(
        lambda: make_npb("CG"),
        "spcd",
        seed=5,
        config=cfg,
        settings=RunSettings(sim_shards=4),
    )
    assert_results_equal(serial, sharded)


def test_worker_crash_respawns_and_replays():
    """Killing a worker mid-run must not change a single counter.

    The coordinator journals every broadcast; a respawned worker replays
    the journal, deterministically rebuilding its rng streams, workload
    cursors and hierarchy state before the run continues.
    """
    cfg = EngineConfig(steps=10, batch_size=96)
    clean = run_single(
        ProducerConsumerWorkload,
        "spcd",
        seed=3,
        config=cfg,
        settings=RunSettings(sim_shards=2),
    )

    killed = {"done": False}

    def kill_one(sim, step, now_ns):
        if step == 4 and not killed["done"]:
            sim._pool._shards[1].proc.kill()
            killed["done"] = True

    sim = Simulator(
        ProducerConsumerWorkload(),
        "spcd",
        seed=3,
        config=cfg,
        settings=RunSettings(sim_shards=2),
    )
    crashed = sim.run(step_callback=kill_one)
    assert killed["done"]
    assert_results_equal(clean, crashed)


def test_shard_count_validation():
    with pytest.raises(ConfigurationError):
        RunSettings(sim_shards=3)  # not a power of two
    with pytest.raises(ConfigurationError):
        RunSettings(sim_shards=0)
    machine = small_machine()
    assert max_shards(machine) == 16  # smallest level: L1 with 16 sets
    with pytest.raises(ConfigurationError):
        ShardPool(
            machine,
            ProducerConsumerWorkload(),
            seed=0,
            n_threads=4,
            batch_size=32,
            n_shards=32,  # > max_shards: stripes would share cache sets
        )
    with pytest.raises(ConfigurationError):
        ShardPool(
            machine,
            ProducerConsumerWorkload(),
            seed=0,
            n_threads=4,
            batch_size=32,
            n_shards=1,  # pointless: the serial engine covers this
        )


def test_env_sim_shards_reaches_engine(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SHARDS", "2")
    assert RunSettings.from_env().sim_shards == 2
    cfg = EngineConfig(steps=4, batch_size=64)
    via_env = run_single(ProducerConsumerWorkload, "spcd", seed=2, config=cfg)
    via_arg = run_single(
        ProducerConsumerWorkload,
        "spcd",
        seed=2,
        config=cfg,
        settings=RunSettings(sim_shards=2),
    )
    assert_results_equal(via_env, via_arg)
