"""Tests for size/time unit helpers."""

import pytest

from repro import units
from repro.units import (
    align_down,
    align_up,
    format_size,
    format_time_ns,
    is_power_of_two,
    log2_int,
)


class TestConstants:
    def test_page_size_matches_shift(self):
        assert 1 << units.PAGE_SHIFT == units.PAGE_SIZE

    def test_cache_line_matches_shift(self):
        assert 1 << units.CACHE_LINE_SHIFT == units.CACHE_LINE_SIZE

    def test_time_units_are_nanoseconds(self):
        assert units.SEC == 1_000 * units.MSEC == 1_000_000 * units.USEC


class TestAlignment:
    def test_align_down_to_page(self):
        assert align_down(4097, 4096) == 4096

    def test_align_down_already_aligned(self):
        assert align_down(8192, 4096) == 8192

    def test_align_up_to_page(self):
        assert align_up(4097, 4096) == 8192

    def test_align_up_identity_on_aligned(self):
        assert align_up(4096, 4096) == 4096

    def test_align_up_zero(self):
        assert align_up(0, 64) == 0


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 1 << 40])
    def test_accepts_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 1000])
    def test_rejects_non_powers(self, value):
        assert not is_power_of_two(value)

    def test_log2_int_exact(self):
        assert log2_int(4096) == 12

    def test_log2_int_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_int(100)


class TestFormatting:
    def test_format_size_mib(self):
        assert format_size(20 * units.MIB) == "20.0 MiB"

    def test_format_size_bytes(self):
        assert format_size(123) == "123 B"

    def test_format_time_ms(self):
        assert format_time_ns(12_300_000) == "12.300 ms"

    def test_format_time_s(self):
        assert format_time_ns(2_500_000_000) == "2.500 s"
