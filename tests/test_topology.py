"""Tests for the machine topology model."""

import pytest

from repro.errors import TopologyError
from repro.machine.topology import (
    CommDistance,
    build_machine,
    dual_xeon_e5_2650,
    pin_sequence,
)


class TestXeonMachine:
    def test_table1_dimensions(self, machine):
        assert machine.n_sockets == 2
        assert machine.cores_per_socket == 8
        assert machine.smt_per_core == 2
        assert machine.n_cores == 16
        assert machine.n_pus == 32

    def test_cache_sizes_match_table1(self, machine):
        assert machine.l1_params.size == 32 * 1024
        assert machine.l2_params.size == 256 * 1024
        assert machine.l3_params.size == 20 * 1024 * 1024

    def test_one_numa_node_per_socket(self, machine):
        assert machine.n_numa_nodes == 2

    def test_describe_mentions_dimensions(self, machine):
        text = machine.describe()
        assert "sockets=2" in text and "L3: 20 MiB" in text


class TestPuNumbering:
    def test_pu_ids_dense(self, machine):
        assert [p.pu_id for p in machine.pus] == list(range(32))

    def test_linux_style_smt_numbering(self, machine):
        """PUs 0..15 are first contexts; PU i and i+16 are SMT siblings."""
        for core in range(16):
            assert machine.pus_of_core(core) == [core, core + 16]

    def test_socket_of_first_half_cores(self, machine):
        assert machine.socket_of(0) == 0
        assert machine.socket_of(8) == 1
        assert machine.socket_of(16) == 0  # SMT sibling of core 0
        assert machine.socket_of(24) == 1

    def test_pus_of_socket_partition(self, machine):
        s0 = set(machine.pus_of_socket(0))
        s1 = set(machine.pus_of_socket(1))
        assert s0 | s1 == set(range(32))
        assert not s0 & s1

    def test_cores_of_socket(self, machine):
        assert machine.cores_of_socket(0) == list(range(8))
        assert machine.cores_of_socket(1) == list(range(8, 16))

    def test_out_of_range_pu_rejected(self, machine):
        with pytest.raises(TopologyError):
            machine.pu(32)

    def test_out_of_range_core_rejected(self, machine):
        with pytest.raises(TopologyError):
            machine.pus_of_core(16)


class TestDistances:
    def test_same_pu(self, machine):
        assert machine.distance(3, 3) is CommDistance.SAME_PU

    def test_smt_siblings_are_case_a(self, machine):
        assert machine.distance(0, 16) is CommDistance.SAME_CORE

    def test_same_socket_is_case_b(self, machine):
        assert machine.distance(0, 7) is CommDistance.SAME_SOCKET

    def test_cross_socket_is_case_c(self, machine):
        assert machine.distance(0, 8) is CommDistance.CROSS_SOCKET

    def test_distance_symmetric(self, machine, rng):
        for _ in range(50):
            a, b = rng.integers(0, 32, 2)
            assert machine.distance(int(a), int(b)) == machine.distance(int(b), int(a))

    def test_distance_matrix_matches_pairwise(self, small_machine):
        m = small_machine.distance_matrix()
        for a in range(small_machine.n_pus):
            for b in range(small_machine.n_pus):
                assert m[a, b] == int(small_machine.distance(a, b))

    def test_distance_ordering(self):
        assert (
            CommDistance.SAME_PU
            < CommDistance.SAME_CORE
            < CommDistance.SAME_SOCKET
            < CommDistance.CROSS_SOCKET
        )


class TestSharingLevels:
    def test_levels_of_xeon(self, machine):
        levels = machine.sharing_levels()
        # cores (SMT), sockets, machine
        assert len(levels) == 3
        assert len(levels[0]) == 16 and all(len(g) == 2 for g in levels[0])
        assert len(levels[1]) == 2 and all(len(g) == 16 for g in levels[1])
        assert levels[2] == [list(range(32))]

    def test_no_smt_level_without_smt(self, single_socket_machine):
        levels = single_socket_machine.sharing_levels()
        assert len(levels) == 1  # machine only (single socket, no SMT)


class TestBuildMachine:
    def test_rejects_zero_dimension(self):
        with pytest.raises(TopologyError):
            build_machine(0, 4, 1)

    def test_asymmetric_counts(self):
        m = build_machine(3, 5, 2)
        assert m.n_pus == 30
        assert m.n_cores == 15

    def test_default_name(self):
        assert build_machine(2, 4, 2).name == "2s4c2t"


class TestPinSequence:
    def test_identity(self, small_machine):
        pins = pin_sequence(small_machine)
        assert pins == {i: i for i in range(small_machine.n_pus)}

    def test_permutation(self, small_machine):
        order = list(reversed(range(small_machine.n_pus)))
        pins = pin_sequence(small_machine, order)
        assert pins[0] == small_machine.n_pus - 1

    def test_rejects_non_permutation(self, small_machine):
        with pytest.raises(TopologyError):
            pin_sequence(small_machine, [0] * small_machine.n_pus)


class TestFactory:
    def test_dual_xeon_is_fresh_each_call(self):
        assert dual_xeon_e5_2650() is not dual_xeon_e5_2650()
