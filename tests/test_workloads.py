"""Tests for the NPB and producer/consumer workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.mem.addresspace import AddressSpace
from repro.units import MSEC, PAGE_SIZE
from repro.workloads.npb import NPB_SPECS, make_npb
from repro.workloads.producer_consumer import ProducerConsumerWorkload


def prepared(workload, capacity=1 << 17):
    space = AddressSpace(capacity)
    workload.setup(space)
    return space


class TestNpbCatalogue:
    def test_all_ten_benchmarks_present(self):
        assert sorted(NPB_SPECS) == [
            "BT", "CG", "DC", "EP", "FT", "IS", "LU", "MG", "SP", "UA",
        ]

    def test_classification_matches_paper(self):
        hetero = {"BT", "CG", "DC", "LU", "MG", "SP", "UA"}
        for name, spec in NPB_SPECS.items():
            expected = "heterogeneous" if name in hetero else "homogeneous"
            assert spec.classification == expected, name

    def test_make_npb_case_insensitive(self):
        assert make_npb("sp").name == "SP"

    def test_make_npb_unknown(self):
        with pytest.raises(WorkloadError):
            make_npb("ZZ")

    def test_sp_communicates_most(self):
        fractions = {n: s.shared_fraction for n, s in NPB_SPECS.items()}
        assert max(fractions, key=fractions.get) == "SP"
        assert min(fractions, key=fractions.get) == "EP"


class TestNpbGeneration:
    def test_generate_requires_setup(self, rng):
        wl = make_npb("BT")
        with pytest.raises(WorkloadError):
            wl.generate(0, 10, 0, rng)

    def test_batch_shape_and_range(self, rng):
        wl = make_npb("BT")
        space = prepared(wl)
        batch = wl.generate(3, 500, 0, rng)
        assert len(batch) == 500
        assert batch.tid == 3
        limit = space.span_pages * PAGE_SIZE
        assert (batch.vaddrs >= 0).all() and (batch.vaddrs < limit).all()

    def test_addresses_line_aligned(self, rng):
        wl = make_npb("LU")
        prepared(wl)
        batch = wl.generate(0, 200, 0, rng)
        assert (batch.vaddrs % 64 == 0).all()

    def test_addresses_land_in_own_regions(self, rng):
        wl = make_npb("SP")
        space = prepared(wl)
        batch = wl.generate(5, 2000, 0, rng)
        allowed_prefixes = ("SP.hot5", "SP.priv5", "SP.stream5", "SP.pair")
        for addr in batch.vaddrs[:: max(1, len(batch) // 100)]:
            region = space.region_of(int(addr))
            assert region is not None
            assert region.name.startswith(allowed_prefixes)
            if region.name.startswith("SP.pair"):
                i, j = region.name[len("SP.pair"):].split("_")
                assert 5 in (int(i), int(j))

    def test_chain_partners_share_pair_regions(self, rng):
        wl = make_npb("SP")
        space = prepared(wl)
        pages_5 = {
            int(a) // PAGE_SIZE
            for a in wl.generate(5, 4000, 0, rng).vaddrs
        }
        pages_6 = {
            int(a) // PAGE_SIZE
            for a in wl.generate(6, 4000, 0, rng).vaddrs
        }
        shared = pages_5 & pages_6
        assert shared  # the (5,6) pair region is touched by both
        for page in shared:
            name = space.region_of(page * PAGE_SIZE).name
            assert name.startswith("SP.pair")

    def test_ep_threads_barely_share(self, rng):
        wl = make_npb("EP")
        prepared(wl)
        a = {int(x) // PAGE_SIZE for x in wl.generate(0, 3000, 0, rng).vaddrs}
        b = {int(x) // PAGE_SIZE for x in wl.generate(1, 3000, 0, rng).vaddrs}
        assert len(a & b) <= 32  # at most the tiny global region

    def test_uniform_benchmark_shares_global(self, rng):
        wl = make_npb("FT")
        space = prepared(wl)
        batch = wl.generate(0, 4000, 0, rng)
        regions = {space.region_of(int(a)).name for a in batch.vaddrs}
        assert "FT.global" in regions

    def test_streaming_is_sequential(self, rng):
        wl = make_npb("DC")
        space = prepared(wl)
        stream = space.region("DC.stream0")
        batch = wl.generate(0, 6000, 0, rng)
        in_stream = batch.vaddrs[
            (batch.vaddrs >= stream.base) & (batch.vaddrs < stream.end)
        ]
        assert len(in_stream) > 100
        # consecutive stream addresses advance by one line (modulo wrap)
        deltas = np.diff(in_stream)
        wrapped = deltas != 64
        assert wrapped.mean() < 0.05

    def test_ground_truth_matches_spec_pattern(self):
        for name in ("BT", "FT", "EP"):
            wl = make_npb(name)
            gt = wl.ground_truth()
            assert gt.n == 32
            if name == "EP":
                assert gt.total() == 0
            if name == "FT":
                assert gt.heterogeneity() == 0  # uniform

    def test_write_fraction_respected(self, rng):
        wl = make_npb("BT")
        prepared(wl)
        batch = wl.generate(0, 5000, 0, rng)
        assert abs(batch.is_write.mean() - wl.write_fraction) < 0.05


class TestProducerConsumer:
    def test_rejects_odd_threads(self):
        with pytest.raises(WorkloadError):
            ProducerConsumerWorkload(n_threads=5)

    def test_phase_pairings(self):
        wl = ProducerConsumerWorkload(n_threads=8)
        assert wl.partner_of(0, 0) == 1 and wl.partner_of(1, 0) == 0
        assert wl.partner_of(0, 1) == 4 and wl.partner_of(4, 1) == 0

    def test_phase_at_alternates(self):
        wl = ProducerConsumerWorkload(phase_period_ns=100)
        assert wl.phase_at(0) == 0
        assert wl.phase_at(100) == 1
        assert wl.phase_at(250) == 0

    def test_start_phase_offset(self):
        wl = ProducerConsumerWorkload(phase_period_ns=100, start_phase=1)
        assert wl.phase_at(0) == 1

    def test_producer_is_lower_id(self):
        wl = ProducerConsumerWorkload(n_threads=8)
        assert wl.is_producer(0, 0) and not wl.is_producer(1, 0)

    def test_accesses_follow_phase(self, rng):
        wl = ProducerConsumerWorkload(n_threads=8, phase_period_ns=100 * MSEC)
        space = prepared(wl)
        vec_phase0 = space.region("pc.vec0_1")
        vec_phase1 = space.region("pc.vec0_4")
        batch0 = wl.generate(0, 4000, 0, rng)
        batch1 = wl.generate(0, 4000, 100 * MSEC, rng)
        in0 = ((batch0.vaddrs >= vec_phase0.base) & (batch0.vaddrs < vec_phase0.end)).mean()
        in1 = ((batch1.vaddrs >= vec_phase1.base) & (batch1.vaddrs < vec_phase1.end)).mean()
        assert in0 > 0.02 and in1 > 0.02
        assert ((batch0.vaddrs >= vec_phase1.base) & (batch0.vaddrs < vec_phase1.end)).sum() == 0

    def test_producers_write_consumers_read(self, rng):
        wl = ProducerConsumerWorkload(n_threads=8)
        space = prepared(wl)
        vec = space.region("pc.vec0_1")
        prod = wl.generate(0, 6000, 0, rng)
        cons = wl.generate(1, 6000, 0, rng)
        pmask = (prod.vaddrs >= vec.base) & (prod.vaddrs < vec.end)
        cmask = (cons.vaddrs >= vec.base) & (cons.vaddrs < vec.end)
        assert prod.is_write[pmask].mean() > 0.6
        assert cons.is_write[cmask].mean() < 0.3

    def test_ground_truth_per_phase(self):
        wl = ProducerConsumerWorkload(n_threads=8, phase_period_ns=100)
        gt0 = wl.ground_truth(0)
        gt1 = wl.ground_truth(150)
        assert gt0.matrix[0, 1] > 0 and gt0.matrix[0, 4] == 0
        assert gt1.matrix[0, 4] > 0 and gt1.matrix[0, 1] == 0

    def test_overall_ground_truth_blends(self):
        wl = ProducerConsumerWorkload(n_threads=8)
        gt = wl.ground_truth()
        assert gt.matrix[0, 1] > 0 and gt.matrix[0, 4] > 0
