#!/usr/bin/env python
"""Smoke-test the mapping daemon end to end, as CI runs it.

Starts ``python -m repro.serve`` as a subprocess, streams a synthetic
far-pair fault pattern from a real socket client, and asserts the
acceptance behaviour:

* the tenant receives at least one MAPPING push;
* the session summary's matrix digest and final mapping are bit-identical
  to :func:`repro.serve.evaluator.offline_reference` for the same stream;
* a second tenant is admitted concurrently and drains cleanly;
* SIGTERM while a session is still open drains the daemon, flushes the
  obs trace (ServeSessionEnd/ServeEnd events), and exits 0.

Exit code 0 on success; prints a FAIL line and exits 1 otherwise.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.engine.settings import RunSettings  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeClient,
    SessionConfig,
    offline_reference,
    synthetic_fault_stream,
)

N_THREADS = 8
EVENTS_PER_THREAD = 20_000
TABLE_SIZE = 10_000
EVAL_EVERY = 4_096
#: REPRO_SERVE_WORKERS>1 smokes the routed multi-process tier instead —
#: same assertions, same digests (that's the point)
WORKERS = RunSettings.from_env().serve_workers


def _start_daemon(trace: Path) -> "tuple[subprocess.Popen, int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--port",
            "0",
            "--eval-every",
            str(EVAL_EVERY),
            "--trace",
            str(trace),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    ready = proc.stdout.readline()
    match = re.search(r"listening on [^:]+:(\d+)", ready)
    if not match:
        proc.kill()
        raise AssertionError(f"no ready line from daemon, got: {ready!r}")
    if WORKERS > 1:
        assert f"workers={WORKERS}" in ready, (
            f"routed daemon's ready line lacks workers={WORKERS}: {ready!r}"
        )
    return proc, int(match.group(1))


def _stream_tenant(port: int, tenant: str, seed: int) -> "dict":
    stream = list(
        synthetic_fault_stream(N_THREADS, EVENTS_PER_THREAD, seed=seed)
    )
    with ServeClient(
        "127.0.0.1",
        port,
        tenant=tenant,
        n_threads=N_THREADS,
        config={"table_size": TABLE_SIZE},
    ) as client:
        for tid, now_ns, vaddrs in stream:
            client.send_events(tid, now_ns, vaddrs)
        summary = client.close()
    assert summary is not None, "no SUMMARY frame"
    cfg = SessionConfig(
        n_threads=N_THREADS,
        table_size=TABLE_SIZE,
        eval_every_events=EVAL_EVERY,
    )
    reference = offline_reference(stream, cfg, flush_after=[len(stream) - 1])
    assert summary["events"] == N_THREADS * EVENTS_PER_THREAD, summary["events"]
    assert summary["matrix_digest"] == reference.final_digest, (
        f"digest mismatch: served {summary['matrix_digest']} "
        f"vs offline {reference.final_digest}"
    )
    assert summary["mapping"] == reference.final_mapping
    assert client.mappings, "tenant never received a MAPPING push"
    assert client.mappings[-1]["mapping"] == reference.final_mapping
    return summary


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        trace = Path(tmp) / "serve.jsonl"
        proc, port = _start_daemon(trace)
        try:
            for index, tenant in enumerate(("smoke-a", "smoke-b")):
                summary = _stream_tenant(port, tenant, seed=index)
                print(
                    f"{tenant}: {summary['events']} events, "
                    f"{summary['remaps']} remaps, digest {summary['matrix_digest']}"
                )
            # leave one session open mid-stream, then SIGTERM the daemon
            client = ServeClient(
                "127.0.0.1",
                port,
                tenant="smoke-open",
                n_threads=N_THREADS,
                config={"table_size": TABLE_SIZE},
            )
            for tid, now_ns, vaddrs in synthetic_fault_stream(
                N_THREADS, 2_000, seed=7
            ):
                client.send_events(tid, now_ns, vaddrs)
            proc.send_signal(signal.SIGTERM)
            exit_code = proc.wait(timeout=30)
            assert exit_code == 0, f"daemon exited {exit_code} on SIGTERM"
            client.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        types = [e["type"] for e in events]
        assert types[0] == "serve_start", types[:3]
        assert types[-1] == "serve_end", types[-3:]
        assert events[0].get("workers", 0) == (WORKERS if WORKERS > 1 else 0)
        if WORKERS > 1:
            spawns = types.count("serve_worker_start")
            assert spawns == WORKERS, f"{spawns} worker starts, expected {WORKERS}"
        session_ends = [e for e in events if e["type"] == "serve_session_end"]
        assert len(session_ends) == 3, f"{len(session_ends)} session_end events"
        drained = [e for e in session_ends if e["reason"] == "drain"]
        assert len(drained) == 1 and drained[0]["tenant"] == "smoke-open", session_ends
        assert all(e["matrix_digest"] for e in session_ends)
        end = events[-1]
        assert end["sessions_served"] == 3 and end["events_total"] > 0, end
        print(
            f"drain ok: trace has {len(events)} events, "
            f"{end['events_total']} events served, exit 0"
        )
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        sys.exit(1)
