#!/usr/bin/env python
"""Lint: every ``REPRO_*`` environment read must live in engine/settings.py.

The run-time configuration surface is consolidated in
:class:`repro.engine.settings.RunSettings`; scattered ``os.environ`` reads
of ``REPRO_*`` variables are how the pre-1.1 codebase drifted into three
subtly different boolean parsers.  This script walks the package's ASTs
and fails if any module other than the allowed ones touches ``os.environ``
(or ``os.getenv``) with a ``REPRO_``-prefixed key — or at all, since the
package defines no other environment variables.

Usage: ``python tools/check_env_reads.py [src/repro]``
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: modules allowed to read the environment (relative to the scanned root)
ALLOWED = {
    "engine/settings.py",
}


def _is_os_environ(node: ast.AST) -> bool:
    """True for ``os.environ`` / ``os.getenv`` / bare ``environ``/``getenv``."""
    if isinstance(node, ast.Attribute):
        return node.attr in ("environ", "getenv") and (
            isinstance(node.value, ast.Name) and node.value.id == "os"
        )
    if isinstance(node, ast.Name):
        return node.id in ("environ", "getenv")
    return False


def check_file(path: Path, rel: str) -> list[str]:
    """Return one violation string per offending environment read."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        hit = None
        if isinstance(node, ast.Subscript) and _is_os_environ(node.value):
            hit = "os.environ[...]"
        elif isinstance(node, ast.Call) and _is_os_environ(node.func):
            hit = "os.getenv(...)" if getattr(node.func, "attr", "") == "getenv" else None
            if hit is None and _is_os_environ(node.func):
                hit = "environment read"
        elif isinstance(node, ast.Attribute) and _is_os_environ(node):
            # covers os.environ.get(...), `for k in os.environ`, etc.
            hit = f"os.{node.attr}"
        if hit is not None:
            violations.append(f"{rel}:{node.lineno}: {hit}")
    return violations


def main(argv: "list[str] | None" = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent / "src" / "repro"
    if not root.is_dir():
        print(f"no such directory: {root}", file=sys.stderr)
        return 2
    bad: list[str] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel in ALLOWED:
            continue
        bad.extend(check_file(path, rel))
    if bad:
        print(
            "environment reads outside repro.engine.settings "
            "(route them through RunSettings.from_env()):",
            file=sys.stderr,
        )
        for v in bad:
            print(f"  {v}", file=sys.stderr)
        return 1
    print(f"ok: no stray environment reads under {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
