#!/usr/bin/env python
"""Lint: every ``REPRO_*`` environment read must live in engine/settings.py.

The run-time configuration surface is consolidated in
:class:`repro.engine.settings.RunSettings`; scattered ``os.environ`` reads
of ``REPRO_*`` variables are how the pre-1.1 codebase drifted into three
subtly different boolean parsers.  This script walks the package's ASTs
and fails if any module other than the allowed ones touches the process
environment — ``os.environ`` / ``os.environb`` subscripts or method calls,
``os.getenv(...)``, through any alias (``import os as _os``,
``from os import environ as env``) — with any key at all, since the
package defines no environment variables outside ``RunSettings``.

Usage: ``python tools/check_env_reads.py [src/repro]``
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: modules allowed to read the environment (relative to the scanned root)
ALLOWED = {
    "engine/settings.py",
}

#: the ``os`` attributes that constitute an environment read
ENV_ATTRS = frozenset({"environ", "environb", "getenv", "getenvb"})


class _EnvReadVisitor(ast.NodeVisitor):
    """Collects environment-read sites, alias-aware and deduplicated.

    Tracks every local name bound to the ``os`` module (``import os``,
    ``import os as _os``) and every name bound to one of its environment
    accessors (``from os import environ as env``), then reports each
    *load* of such a name exactly once — the attribute node itself, so a
    call like ``os.getenv("X")`` yields one violation, not one for the
    ``Call`` and one for its ``func``.
    """

    def __init__(self, rel: str) -> None:
        self.rel = rel
        self.os_aliases = {"os"}
        self.env_names: set[str] = set()
        self.violations: list[str] = []

    def _report(self, node: ast.AST, what: str) -> None:
        self.violations.append(f"{self.rel}:{node.lineno}: {what}")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "os":
                self.os_aliases.add(alias.asname or "os")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "os":
            for alias in node.names:
                if alias.name in ENV_ATTRS:
                    name = alias.asname or alias.name
                    self.env_names.add(name)
                    self._report(node, f"from os import {alias.name}")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr in ENV_ATTRS
            and isinstance(node.value, ast.Name)
            and node.value.id in self.os_aliases
        ):
            self._report(node, f"{node.value.id}.{node.attr}")
            return  # the child Name is part of this site, not a second one
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.env_names and isinstance(node.ctx, ast.Load):
            self._report(node, node.id)


def check_file(path: Path, rel: str) -> list[str]:
    """Return one violation string per offending environment-read site."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    visitor = _EnvReadVisitor(rel)
    visitor.visit(tree)
    return visitor.violations


def main(argv: "list[str] | None" = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent / "src" / "repro"
    if not root.is_dir():
        print(f"no such directory: {root}", file=sys.stderr)
        return 2
    bad: list[str] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel in ALLOWED:
            continue
        bad.extend(check_file(path, rel))
    if bad:
        print(
            "environment reads outside repro.engine.settings "
            "(route them through RunSettings.from_env()):",
            file=sys.stderr,
        )
        for v in bad:
            print(f"  {v}", file=sys.stderr)
        return 1
    print(f"ok: no stray environment reads under {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
